// Package speccodec is the wire codec of the dispersal system: a canonical
// JSON encoding of game specs (site values, player count, congestion policy,
// optional seed and tag) shared by the dispersald server, the CLI tools and
// the tests.
//
// The encoding is canonical: field order is fixed, parameters irrelevant to
// the named policy are rejected on decode and omitted on encode, and float
// formatting is the deterministic encoding/json shortest form. CacheKey
// strips the fields that cannot affect the deterministic analysis quantities
// (seed, tag), so two requests for the same game — however they were spelled
// by the client — collapse onto one cache entry.
//
// Decode never panics on any input and every failure is typed: it wraps
// exactly one of ErrSyntax (the bytes are not the JSON shape), ErrSpec (the
// values or player count violate the paper's conventions) or ErrPolicy (the
// congestion policy is unknown, mis-parameterized, or violates the
// congestion axioms).
package speccodec

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"dispersal"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// Typed decode/encode failures. Every error returned by this package wraps
// exactly one of these.
var (
	// ErrSyntax reports bytes that are not the expected JSON shape:
	// malformed JSON, wrong types, unknown fields, trailing data, or
	// numbers outside the float64 range.
	ErrSyntax = errors.New("speccodec: malformed spec JSON")
	// ErrSpec reports a well-formed document describing an invalid game:
	// empty/non-positive/non-monotone values or k < 1.
	ErrSpec = errors.New("speccodec: invalid game spec")
	// ErrPolicy reports an unknown policy name, missing or extraneous
	// policy parameters, or a parameterization violating the congestion
	// axioms (C(1) = 1, non-increasing, finite).
	ErrPolicy = errors.New("speccodec: invalid congestion policy")
)

// Size bounds enforced by Decode. Validation and the downstream solvers do
// work proportional to k and len(values); without bounds a single request
// could pin a CPU before any deadline applies.
const (
	// MaxSites bounds len(values).
	MaxSites = 65536
	// MaxPlayers bounds k (policy validation and the congestion expectation
	// g(q) are O(k) per evaluation).
	MaxPlayers = 1 << 20
)

// wireSpec is the JSON document shape. Field order here is the canonical
// encoding order.
type wireSpec struct {
	Values []float64  `json:"values"`
	K      int        `json:"k"`
	Policy wirePolicy `json:"policy"`
	Seed   uint64     `json:"seed,omitempty"`
	Tag    string     `json:"tag,omitempty"`
}

// wirePolicy names a congestion policy and carries its parameters. Exactly
// the parameters of the named policy must be present.
type wirePolicy struct {
	Name    string    `json:"name"`
	C2      *float64  `json:"c2,omitempty"`
	Beta    *float64  `json:"beta,omitempty"`
	Gamma   *float64  `json:"gamma,omitempty"`
	Penalty *float64  `json:"penalty,omitempty"`
	Head    []float64 `json:"head,omitempty"`
	Tail    *float64  `json:"tail,omitempty"`
}

// Decode parses and validates one game spec. The input must be a single
// JSON object with no unknown fields and no trailing data; the decoded spec
// satisfies the paper's conventions (values finite, strictly positive,
// non-increasing; k >= 1; policy axioms hold up to horizon k).
func Decode(data []byte) (dispersal.Spec, error) {
	var w wireSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return dispersal.Spec{}, fmt.Errorf("%w: %v", ErrSyntax, err)
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		return dispersal.Spec{}, fmt.Errorf("%w: trailing data after spec object", ErrSyntax)
	}
	if w.K < 1 {
		return dispersal.Spec{}, fmt.Errorf("%w: player count k must be >= 1, got %d", ErrSpec, w.K)
	}
	if w.K > MaxPlayers {
		return dispersal.Spec{}, fmt.Errorf("%w: player count %d exceeds the limit of %d", ErrSpec, w.K, MaxPlayers)
	}
	if len(w.Values) > MaxSites {
		return dispersal.Spec{}, fmt.Errorf("%w: %d sites exceed the limit of %d", ErrSpec, len(w.Values), MaxSites)
	}
	f := dispersal.Values(w.Values)
	if err := f.Validate(); err != nil {
		return dispersal.Spec{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	c, err := decodePolicy(w.Policy)
	if err != nil {
		return dispersal.Spec{}, err
	}
	// Axiom check over the game's own horizon (and at least one collision
	// level, so e.g. twopoint with c2 > 1 is rejected even at k = 1).
	horizon := w.K
	if horizon < 2 {
		horizon = 2
	}
	if err := policy.Validate(c, horizon); err != nil {
		return dispersal.Spec{}, fmt.Errorf("%w: %v", ErrPolicy, err)
	}
	return dispersal.Spec{
		Values: f.Clone(),
		K:      w.K,
		Policy: c,
		Seed:   w.Seed,
		Tag:    w.Tag,
	}, nil
}

// Encode renders a spec in the canonical JSON form. It fails with ErrSpec on
// non-finite values and with ErrPolicy on a congestion policy this codec
// does not know how to name.
func Encode(s dispersal.Spec) ([]byte, error) {
	w, err := wireOf(s)
	if err != nil {
		return nil, err
	}
	return json.Marshal(w)
}

// CacheKey returns the canonical bytes of the spec with seed and tag
// stripped, as a string. The deterministic analysis quantities served by
// dispersald — the IFD, the coverage optimum and the SPoA — depend only on
// (values, k, policy), so specs differing only in seed or tag share a key.
func CacheKey(s dispersal.Spec) (string, error) {
	w, err := wireOf(s)
	if err != nil {
		return "", err
	}
	w.Seed = 0
	w.Tag = ""
	b, err := json.Marshal(w)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return string(b), nil
}

// FrameKey returns the cache key of the game the spec describes when its
// values are replaced by the landscape frame — the per-frame key of the
// dispersald trajectory endpoint. The key is the ordinary CacheKey of the
// frame-substituted spec, so a trajectory frame and an /v1/analyze request
// for the same landscape share one cache entry.
func FrameKey(s dispersal.Spec, frame []float64) (string, error) {
	s.Values = append(dispersal.Values(nil), frame...)
	return CacheKey(s)
}

// localityGrid is the resolution of LocalityKey's value quantization:
// values are bucketed by round(ln(v) * localityGrid), i.e. into buckets of
// roughly 1/localityGrid (~3%) relative width. Two landscapes whose values
// all fall in the same buckets share a locality key; a warm state recorded
// under the key is then close enough for a drift-scaled warm bracket to pay
// off. The grid is the system-wide one (site.LocalityGrid), shared with the
// sweep's warm-chaining order.
const localityGrid = site.LocalityGrid

// wireLocality is the marshalled shape of a locality key: quantized value
// buckets plus the exact game shape (k, policy). Seed and tag never
// participate.
type wireLocality struct {
	Buckets []int64    `json:"b"`
	K       int        `json:"k"`
	Policy  wirePolicy `json:"policy"`
}

// LocalityKey returns a locality-sensitive key for the spec's game: the
// canonical spec shape (site count, player count, policy with parameters)
// with every site value quantized onto a logarithmic grid. Unlike CacheKey,
// which is an exact identity for result caching, LocalityKey deliberately
// collides nearby landscapes — it is the index of the server's warm-state
// cache, where a state solved for any sufficiently near landscape is a
// useful seed. Nearby values can still straddle a bucket edge and miss;
// that costs a cold solve, never correctness.
func LocalityKey(s dispersal.Spec) (string, error) {
	w, err := wireOf(s)
	if err != nil {
		return "", err
	}
	b, err := site.LogBuckets(w.Values, localityGrid)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	enc, err := json.Marshal(wireLocality{Buckets: b, K: w.K, Policy: w.Policy})
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrSpec, err)
	}
	return "warm:" + string(enc), nil
}

// FrameLocalityKey is LocalityKey of the frame-substituted spec — the
// warm-cache index of one trajectory frame, sharing the keyspace with
// isolated analyze requests for nearby landscapes.
func FrameLocalityKey(s dispersal.Spec, frame []float64) (string, error) {
	s.Values = append(dispersal.Values(nil), frame...)
	return LocalityKey(s)
}

// wireOf flattens a Spec into its wire shape, validating finiteness (JSON
// has no NaN/Inf) and policy encodability.
func wireOf(s dispersal.Spec) (wireSpec, error) {
	for i, v := range s.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return wireSpec{}, fmt.Errorf("%w: f(%d) = %v is not finite", ErrSpec, i+1, v)
		}
	}
	wp, err := encodePolicy(s.Policy)
	if err != nil {
		return wireSpec{}, err
	}
	return wireSpec{
		Values: append([]float64(nil), s.Values...),
		K:      s.K,
		Policy: wp,
		Seed:   s.Seed,
		Tag:    s.Tag,
	}, nil
}

// ptr returns a pointer to v, for optional wire parameters.
func ptr(v float64) *float64 { return &v }

// encodePolicy names a concrete congestion policy on the wire.
func encodePolicy(c dispersal.Congestion) (wirePolicy, error) {
	switch p := c.(type) {
	case policy.Exclusive:
		return wirePolicy{Name: "exclusive"}, nil
	case policy.Sharing:
		return wirePolicy{Name: "sharing"}, nil
	case policy.Constant:
		return wirePolicy{Name: "constant"}, nil
	case policy.TwoPoint:
		return wirePolicy{Name: "twopoint", C2: ptr(p.C2)}, nil
	case policy.PowerLaw:
		return wirePolicy{Name: "powerlaw", Beta: ptr(p.Beta)}, nil
	case policy.Cooperative:
		return wirePolicy{Name: "cooperative", Gamma: ptr(p.Gamma)}, nil
	case policy.Aggressive:
		return wirePolicy{Name: "aggressive", Penalty: ptr(p.Penalty)}, nil
	case policy.Table:
		return wirePolicy{
			Name: "table",
			Head: append([]float64(nil), p.Head...),
			Tail: ptr(p.Tail),
		}, nil
	case nil:
		return wirePolicy{}, fmt.Errorf("%w: nil policy", ErrPolicy)
	default:
		return wirePolicy{}, fmt.Errorf("%w: cannot encode policy %q (%T)", ErrPolicy, c.Name(), c)
	}
}

// policyParams maps each wire name to the set of parameters it requires.
// The zero flags mean "must be absent".
type policyParams struct {
	c2, beta, gamma, penalty, table bool
}

var knownPolicies = map[string]policyParams{
	"exclusive":   {},
	"sharing":     {},
	"constant":    {},
	"twopoint":    {c2: true},
	"powerlaw":    {beta: true},
	"cooperative": {gamma: true},
	"aggressive":  {penalty: true},
	"table":       {table: true},
}

// decodePolicy rebuilds the named congestion policy, insisting that exactly
// its parameters are present (canonical form admits one spelling per
// policy).
func decodePolicy(w wirePolicy) (dispersal.Congestion, error) {
	want, ok := knownPolicies[w.Name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown policy name %q", ErrPolicy, w.Name)
	}
	check := func(name string, present, wanted bool) error {
		if present && !wanted {
			return fmt.Errorf("%w: policy %q does not take parameter %q", ErrPolicy, w.Name, name)
		}
		if !present && wanted {
			return fmt.Errorf("%w: policy %q requires parameter %q", ErrPolicy, w.Name, name)
		}
		return nil
	}
	for _, p := range []struct {
		name            string
		present, wanted bool
	}{
		{"c2", w.C2 != nil, want.c2},
		{"beta", w.Beta != nil, want.beta},
		{"gamma", w.Gamma != nil, want.gamma},
		{"penalty", w.Penalty != nil, want.penalty},
		{"head", w.Head != nil, want.table},
		{"tail", w.Tail != nil, want.table},
	} {
		if err := check(p.name, p.present, p.wanted); err != nil {
			return nil, err
		}
	}
	switch w.Name {
	case "exclusive":
		return policy.Exclusive{}, nil
	case "sharing":
		return policy.Sharing{}, nil
	case "constant":
		return policy.Constant{}, nil
	case "twopoint":
		return policy.TwoPoint{C2: *w.C2}, nil
	case "powerlaw":
		return policy.PowerLaw{Beta: *w.Beta}, nil
	case "cooperative":
		return policy.Cooperative{Gamma: *w.Gamma}, nil
	case "aggressive":
		return policy.Aggressive{Penalty: *w.Penalty}, nil
	default: // "table"
		t, err := policy.NewTable(w.Head, *w.Tail)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPolicy, err)
		}
		return t, nil
	}
}
