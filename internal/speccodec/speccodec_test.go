package speccodec_test

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"dispersal"
	"dispersal/internal/policy"
	"dispersal/internal/speccodec"
)

// allPolicies is one representative of every encodable congestion policy.
func allPolicies(t *testing.T) []dispersal.Congestion {
	t.Helper()
	tab, err := policy.NewTable([]float64{1, 0.5, 0.25}, 0.1)
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return []dispersal.Congestion{
		dispersal.Exclusive(),
		dispersal.Sharing(),
		dispersal.Constant(),
		dispersal.TwoPoint(0.25),
		dispersal.TwoPoint(-0.5),
		dispersal.PowerLaw(2),
		dispersal.Cooperative(0.9),
		dispersal.Aggressive(0.5),
		tab,
	}
}

func TestRoundTripEveryPolicy(t *testing.T) {
	for _, c := range allPolicies(t) {
		spec := dispersal.Spec{
			Values: dispersal.Values{1, 0.6, 0.3},
			K:      3,
			Policy: c,
			Seed:   7,
			Tag:    "round-trip",
		}
		b, err := speccodec.Encode(spec)
		if err != nil {
			t.Fatalf("Encode(%s): %v", c.Name(), err)
		}
		got, err := speccodec.Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v\n%s", c.Name(), err, b)
		}
		if got.K != spec.K || got.Seed != spec.Seed || got.Tag != spec.Tag {
			t.Errorf("%s: round trip changed scalars: %+v", c.Name(), got)
		}
		if len(got.Values) != len(spec.Values) {
			t.Fatalf("%s: round trip changed values length", c.Name())
		}
		for i := range got.Values {
			if got.Values[i] != spec.Values[i] {
				t.Errorf("%s: values[%d] = %v, want %v", c.Name(), i, got.Values[i], spec.Values[i])
			}
		}
		if got.Policy.Name() != c.Name() {
			t.Errorf("round trip changed policy: got %s, want %s", got.Policy.Name(), c.Name())
		}
		// The re-encoding must be byte-identical: the form is canonical.
		b2, err := speccodec.Encode(got)
		if err != nil {
			t.Fatalf("re-Encode(%s): %v", c.Name(), err)
		}
		if string(b) != string(b2) {
			t.Errorf("%s: encoding not canonical:\n  %s\n  %s", c.Name(), b, b2)
		}
	}
}

func TestCacheKeyIgnoresSeedAndTag(t *testing.T) {
	base := dispersal.Spec{Values: dispersal.Values{1, 0.5}, K: 2, Policy: dispersal.Exclusive()}
	withNoise := base
	withNoise.Seed = 99
	withNoise.Tag = "client-42"
	k1, err := speccodec.CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := speccodec.CacheKey(withNoise)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("seed/tag leaked into the cache key:\n  %s\n  %s", k1, k2)
	}

	other := base
	other.K = 3
	k3, err := speccodec.CacheKey(other)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("different player counts share a cache key")
	}
}

func TestFrameKeySubstitutesValues(t *testing.T) {
	spec := dispersal.Spec{Values: dispersal.Values{1, 0.5}, K: 2, Policy: dispersal.Sharing(), Seed: 7, Tag: "x"}
	frame := []float64{0.9, 0.6}

	fk, err := speccodec.FrameKey(spec, frame)
	if err != nil {
		t.Fatal(err)
	}
	// A frame key is exactly the analyze-path cache key of the
	// frame-substituted spec: trajectory frames and analyze requests for
	// the same landscape must share one cache entry.
	want, err := speccodec.CacheKey(dispersal.Spec{Values: frame, K: 2, Policy: dispersal.Sharing()})
	if err != nil {
		t.Fatal(err)
	}
	if fk != want {
		t.Errorf("frame key diverges from the analyze key:\n  %s\n  %s", fk, want)
	}
	if spec.Values[0] != 1 || spec.Values[1] != 0.5 {
		t.Error("FrameKey mutated the caller's spec")
	}

	base, err := speccodec.CacheKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if fk == base {
		t.Error("frame key must depend on the frame values")
	}
}

func TestDecodeErrorsAreTyped(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"garbage", "{", speccodec.ErrSyntax},
		{"empty", "", speccodec.ErrSyntax},
		{"wrong type", `{"values":"abc","k":2,"policy":{"name":"exclusive"}}`, speccodec.ErrSyntax},
		{"unknown field", `{"values":[1],"k":1,"policy":{"name":"exclusive"},"bogus":1}`, speccodec.ErrSyntax},
		{"trailing data", `{"values":[1],"k":1,"policy":{"name":"exclusive"}} {}`, speccodec.ErrSyntax},
		{"float overflow", `{"values":[1e999],"k":1,"policy":{"name":"exclusive"}}`, speccodec.ErrSyntax},
		{"nan literal", `{"values":[NaN],"k":1,"policy":{"name":"exclusive"}}`, speccodec.ErrSyntax},
		{"no values", `{"k":2,"policy":{"name":"exclusive"}}`, speccodec.ErrSpec},
		{"zero k", `{"values":[1],"k":0,"policy":{"name":"exclusive"}}`, speccodec.ErrSpec},
		{"negative k", `{"values":[1],"k":-3,"policy":{"name":"exclusive"}}`, speccodec.ErrSpec},
		{"non-monotone f", `{"values":[0.5,1],"k":2,"policy":{"name":"exclusive"}}`, speccodec.ErrSpec},
		{"non-positive f", `{"values":[1,0],"k":2,"policy":{"name":"exclusive"}}`, speccodec.ErrSpec},
		{"no policy", `{"values":[1],"k":1}`, speccodec.ErrPolicy},
		{"unknown policy", `{"values":[1],"k":1,"policy":{"name":"mystery"}}`, speccodec.ErrPolicy},
		{"missing param", `{"values":[1],"k":1,"policy":{"name":"twopoint"}}`, speccodec.ErrPolicy},
		{"extraneous param", `{"values":[1],"k":1,"policy":{"name":"exclusive","c2":0.5}}`, speccodec.ErrPolicy},
		{"wrong param", `{"values":[1],"k":1,"policy":{"name":"powerlaw","c2":0.5}}`, speccodec.ErrPolicy},
		{"axiom violation", `{"values":[1],"k":2,"policy":{"name":"twopoint","c2":1.5}}`, speccodec.ErrPolicy},
		{"negative beta", `{"values":[1],"k":3,"policy":{"name":"powerlaw","beta":-1}}`, speccodec.ErrPolicy},
		{"bad table", `{"values":[1],"k":2,"policy":{"name":"table","head":[1,2],"tail":0}}`, speccodec.ErrPolicy},
	}
	for _, tc := range cases {
		_, err := speccodec.Decode([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: Decode accepted %q", tc.name, tc.in)
			continue
		}
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: error %v is not %v", tc.name, err, tc.want)
		}
	}
}

func TestDecodeSizeBounds(t *testing.T) {
	huge := fmt.Sprintf(`{"values":[1],"k":%d,"policy":{"name":"powerlaw","beta":2}}`, speccodec.MaxPlayers+1)
	if _, err := speccodec.Decode([]byte(huge)); !errors.Is(err, speccodec.ErrSpec) {
		t.Errorf("k beyond MaxPlayers: %v, want ErrSpec", err)
	}

	var sb strings.Builder
	sb.WriteString(`{"values":[1`)
	for i := 0; i < speccodec.MaxSites; i++ {
		sb.WriteString(",1")
	}
	sb.WriteString(`],"k":2,"policy":{"name":"exclusive"}}`)
	if _, err := speccodec.Decode([]byte(sb.String())); !errors.Is(err, speccodec.ErrSpec) {
		t.Errorf("values beyond MaxSites: %v, want ErrSpec", err)
	}

	// The bounds themselves are accepted.
	atBound := fmt.Sprintf(`{"values":[1],"k":%d,"policy":{"name":"exclusive"}}`, speccodec.MaxPlayers)
	if _, err := speccodec.Decode([]byte(atBound)); err != nil {
		t.Errorf("k = MaxPlayers rejected: %v", err)
	}
}

func TestDecodeValidSpellings(t *testing.T) {
	// Field order and whitespace are client choices; canonicalization is
	// the codec's job.
	in := `{
		"tag": "spaced",
		"policy": {"c2": 0.25, "name": "twopoint"},
		"k": 4,
		"values": [2, 1, 0.5]
	}`
	spec, err := speccodec.Decode([]byte(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	key, err := speccodec.CacheKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	canonical, err := speccodec.CacheKey(dispersal.Spec{
		Values: dispersal.Values{2, 1, 0.5},
		K:      4,
		Policy: dispersal.TwoPoint(0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if key != canonical {
		t.Errorf("spelled-out spec does not canonicalize:\n  %s\n  %s", key, canonical)
	}
}

func TestEncodeRejectsUnknownAndNonFinite(t *testing.T) {
	if _, err := speccodec.Encode(dispersal.Spec{Values: dispersal.Values{1}, K: 1, Policy: nil}); !errors.Is(err, speccodec.ErrPolicy) {
		t.Errorf("nil policy: %v", err)
	}
	type custom struct{ policy.Constant }
	if _, err := speccodec.Encode(dispersal.Spec{Values: dispersal.Values{1}, K: 1, Policy: custom{}}); !errors.Is(err, speccodec.ErrPolicy) {
		t.Errorf("custom policy: %v", err)
	}
	bad := dispersal.Spec{Values: dispersal.Values{1, math.Inf(1)}, K: 1, Policy: dispersal.Exclusive()}
	if _, err := speccodec.Encode(bad); !errors.Is(err, speccodec.ErrSpec) {
		t.Errorf("non-finite values: %v", err)
	}
}

func TestDecodedSpecBuildsAGame(t *testing.T) {
	spec, err := speccodec.Decode([]byte(`{"values":[1,0.5],"k":2,"policy":{"name":"exclusive"},"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	g, err := dispersal.FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec on a decoded spec: %v", err)
	}
	if !strings.Contains(g.String(), "M=2") {
		t.Errorf("unexpected game: %s", g)
	}
}

func TestLocalityKeyBucketsNearbyLandscapes(t *testing.T) {
	base := dispersal.Spec{Values: dispersal.Values{1, 0.5, 0.25}, K: 4, Policy: dispersal.Sharing()}
	k1, err := speccodec.LocalityKey(base)
	if err != nil {
		t.Fatal(err)
	}

	// A tiny relative perturbation lands in the same buckets.
	near := base
	near.Values = dispersal.Values{1.0001, 0.50003, 0.249995}
	near.Seed, near.Tag = 42, "other-client"
	k2, err := speccodec.LocalityKey(near)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("near-identical landscapes have distinct locality keys:\n  %s\n  %s", k1, k2)
	}

	// A far landscape of the same shape gets a different key.
	far := base
	far.Values = dispersal.Values{10, 5, 2.5}
	k3, err := speccodec.LocalityKey(far)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("distant landscapes share a locality key")
	}

	// Shape changes always change the key.
	for name, mutate := range map[string]func(*dispersal.Spec){
		"player count": func(s *dispersal.Spec) { s.K = 5 },
		"policy":       func(s *dispersal.Spec) { s.Policy = dispersal.PowerLaw(1.5) },
		"site count":   func(s *dispersal.Spec) { s.Values = dispersal.Values{1, 0.5} },
	} {
		other := base
		mutate(&other)
		k, err := speccodec.LocalityKey(other)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("%s change did not change the locality key", name)
		}
	}

	// The locality keyspace must never collide with the exact-result
	// keyspace: the server runs both caches off the same spec.
	ck, err := speccodec.CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if ck == k1 {
		t.Error("locality key collides with the exact cache key")
	}
}

func TestFrameLocalityKeySharesAnalyzeKeyspace(t *testing.T) {
	spec := dispersal.Spec{Values: dispersal.Values{1, 0.5}, K: 3, Policy: dispersal.Sharing(), Seed: 9, Tag: "t"}
	frame := []float64{0.8, 0.41}
	fk, err := speccodec.FrameLocalityKey(spec, frame)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := speccodec.LocalityKey(dispersal.Spec{Values: dispersal.Values(frame), K: 3, Policy: dispersal.Sharing()})
	if err != nil {
		t.Fatal(err)
	}
	if fk != direct {
		t.Errorf("frame locality key differs from the frame-substituted spec's:\n  %s\n  %s", fk, direct)
	}
}
