// Package species implements the interspecies experiment the paper sketches
// in Section 5.2: two species forage over the same patches without direct
// contact (they feed at different times of day). Each species plays the
// within-species equilibrium (IFD) of its own congestion attitude; the
// species feeding second only finds what the first left behind. The paper's
// prediction — reproduced by experiment E16 — is that the species with
// costlier conspecific collisions (the "aggressive" one) covers the patches
// better and thereby starves its peaceful competitor, even though its
// within-group behaviour looks wasteful.
//
// With species A feeding first, the expected intakes per foraging bout are
//
//	E[A] = sum_x f(x) * (1 - (1 - pA(x))^kA)                      (A's coverage)
//	E[B] = sum_x f(x) * (1 - pA(x))^kA * (1 - (1 - pB(x))^kB)     (leftovers B finds)
//
// Both closed forms and a Monte-Carlo simulator are provided and
// cross-checked in the tests.
package species

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/stats"
	"dispersal/internal/strategy"
)

// Errors returned by the package.
var (
	ErrPopulation = errors.New("species: group size must be >= 1")
	ErrRounds     = errors.New("species: rounds must be >= 1")
)

// Species describes one competing species: its nightly group size and its
// conspecific collision attitude. Strategy, if nil, is filled with the
// species' within-species IFD on the shared patches.
type Species struct {
	// Name labels output rows.
	Name string
	// K is the number of individuals foraging per bout.
	K int
	// C is the within-species congestion policy.
	C policy.Congestion
	// Strategy overrides the equilibrium dispersal strategy when non-nil.
	Strategy strategy.Strategy
}

// resolve computes the species' dispersal strategy on patches f.
func (s Species) resolve(f site.Values) (strategy.Strategy, error) {
	if s.K < 1 {
		return nil, fmt.Errorf("%w: %s has k=%d", ErrPopulation, s.Name, s.K)
	}
	if s.Strategy != nil {
		if len(s.Strategy) != len(f) {
			return nil, fmt.Errorf("species: %s strategy has %d sites, want %d", s.Name, len(s.Strategy), len(f))
		}
		if err := s.Strategy.Validate(); err != nil {
			return nil, fmt.Errorf("species %s: %w", s.Name, err)
		}
		return s.Strategy, nil
	}
	eq, _, err := ifd.Solve(f, s.K, s.C)
	if err != nil {
		return nil, fmt.Errorf("species %s: %w", s.Name, err)
	}
	return eq, nil
}

// Intake is a pair of per-bout expected group intakes.
type Intake struct {
	// A and B are the expected values consumed by each species per bout.
	A, B float64
}

// Outcome reports the interspecies competition under the three feeding
// orders.
type Outcome struct {
	// AFirst: species A feeds first every bout.
	AFirst Intake
	// BFirst: species B feeds first every bout.
	BFirst Intake
	// Alternating: the two orders alternate (the average of the above).
	Alternating Intake
	// StrategyA and StrategyB are the resolved dispersal strategies.
	StrategyA, StrategyB strategy.Strategy
}

// Intakes computes the exact expected intakes of both species on shared
// patches f.
func Intakes(f site.Values, a, b Species) (Outcome, error) {
	if err := f.Validate(); err != nil {
		return Outcome{}, err
	}
	pa, err := a.resolve(f)
	if err != nil {
		return Outcome{}, err
	}
	pb, err := b.resolve(f)
	if err != nil {
		return Outcome{}, err
	}
	firstSecond := func(pFirst strategy.Strategy, kFirst int, pSecond strategy.Strategy, kSecond int) (float64, float64) {
		var first, second numeric.Accumulator
		for x := range f {
			missFirst := numeric.PowOneMinus(pFirst[x], kFirst)
			first.Add(f[x] * (1 - missFirst))
			second.Add(f[x] * missFirst * (1 - numeric.PowOneMinus(pSecond[x], kSecond)))
		}
		return first.Sum(), second.Sum()
	}
	var out Outcome
	out.StrategyA, out.StrategyB = pa, pb
	out.AFirst.A, out.AFirst.B = firstSecond(pa, a.K, pb, b.K)
	out.BFirst.B, out.BFirst.A = firstSecond(pb, b.K, pa, a.K)
	out.Alternating.A = (out.AFirst.A + out.BFirst.A) / 2
	out.Alternating.B = (out.AFirst.B + out.BFirst.B) / 2
	return out, nil
}

// SimOutcome carries Monte-Carlo intake summaries under alternating order.
type SimOutcome struct {
	// A and B summarize per-bout intakes across simulated bouts.
	A, B stats.Summary
}

// Simulate runs rounds alternating-order foraging bouts and reports the
// per-species intake statistics. It exists to validate the closed forms of
// Intakes and to support extensions (depletion memory, partial recovery)
// that have no closed form.
func Simulate(f site.Values, a, b Species, rounds int, seed uint64) (SimOutcome, error) {
	if err := f.Validate(); err != nil {
		return SimOutcome{}, err
	}
	if rounds < 1 {
		return SimOutcome{}, fmt.Errorf("%w: %d", ErrRounds, rounds)
	}
	pa, err := a.resolve(f)
	if err != nil {
		return SimOutcome{}, err
	}
	pb, err := b.resolve(f)
	if err != nil {
		return SimOutcome{}, err
	}
	sa, err := strategy.NewSampler(pa)
	if err != nil {
		return SimOutcome{}, err
	}
	sb, err := strategy.NewSampler(pb)
	if err != nil {
		return SimOutcome{}, err
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	m := len(f)
	taken := make([]bool, m)
	touched := make([]int, 0, a.K+b.K)

	feed := func(s *strategy.Sampler, k int) float64 {
		var intake float64
		for i := 0; i < k; i++ {
			x := s.Sample(rng)
			if !taken[x] {
				taken[x] = true
				touched = append(touched, x)
				intake += f[x]
			}
		}
		return intake
	}

	var wa, wb stats.Welford
	for r := 0; r < rounds; r++ {
		touched = touched[:0]
		var ia, ib float64
		if r%2 == 0 {
			ia = feed(sa, a.K)
			ib = feed(sb, b.K)
		} else {
			ib = feed(sb, b.K)
			ia = feed(sa, a.K)
		}
		wa.Add(ia)
		wb.Add(ib)
		for _, x := range touched {
			taken[x] = false
		}
	}
	return SimOutcome{A: wa.Summarize(), B: wb.Summarize()}, nil
}
