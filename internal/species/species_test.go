package species

import (
	"errors"
	"math"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

func twoSpecies(f site.Values, k int) (Species, Species) {
	return Species{Name: "solomon", K: k, C: policy.Exclusive{}},
		Species{Name: "peaceful", K: k, C: policy.Sharing{}}
}

func TestAggressiveSpeciesWinsAlternating(t *testing.T) {
	// The Section 5.2 prediction: on equal group sizes and shared patches,
	// the exclusive-policy species out-consumes the sharing species.
	k := 6
	f := site.SlowDecay(4*k, k)
	a, b := twoSpecies(f, k)
	out, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alternating.A <= out.Alternating.B {
		t.Errorf("aggressive species does not win: A=%v, B=%v",
			out.Alternating.A, out.Alternating.B)
	}
}

func TestFeedingFirstIsAlwaysBetter(t *testing.T) {
	f := site.Geometric(10, 1, 0.8)
	a, b := twoSpecies(f, 4)
	out, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.AFirst.A <= out.BFirst.A {
		t.Errorf("A prefers feeding second: first %v, second %v", out.AFirst.A, out.BFirst.A)
	}
	if out.BFirst.B <= out.AFirst.B {
		t.Errorf("B prefers feeding second: first %v, second %v", out.BFirst.B, out.AFirst.B)
	}
}

func TestIntakesAgainstHandComputation(t *testing.T) {
	// One patch, both species singletons always visiting it: the first
	// feeder takes everything.
	f := site.Values{2}
	a := Species{Name: "a", K: 1, C: policy.Exclusive{}, Strategy: strategy.Strategy{1}}
	b := Species{Name: "b", K: 1, C: policy.Exclusive{}, Strategy: strategy.Strategy{1}}
	out, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.AFirst.A != 2 || out.AFirst.B != 0 {
		t.Errorf("AFirst = %+v", out.AFirst)
	}
	if out.BFirst.B != 2 || out.BFirst.A != 0 {
		t.Errorf("BFirst = %+v", out.BFirst)
	}
	if out.Alternating.A != 1 || out.Alternating.B != 1 {
		t.Errorf("Alternating = %+v", out.Alternating)
	}
}

func TestIntakesDisjointStrategiesDoNotInteract(t *testing.T) {
	f := site.Values{1, 0.5}
	a := Species{Name: "a", K: 2, C: policy.Exclusive{}, Strategy: strategy.Delta(2, 0)}
	b := Species{Name: "b", K: 2, C: policy.Exclusive{}, Strategy: strategy.Delta(2, 1)}
	out, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.AFirst.A != 1 || out.AFirst.B != 0.5 || out.BFirst.A != 1 || out.BFirst.B != 0.5 {
		t.Errorf("disjoint species interact: %+v", out)
	}
}

func TestSimulateMatchesAnalytic(t *testing.T) {
	f := site.Geometric(8, 1, 0.7)
	a, b := twoSpecies(f, 3)
	exact, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := Simulate(f, a, b, 200_000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sim.A.Mean - exact.Alternating.A); d > 4*sim.A.CI95+1e-9 {
		t.Errorf("A: simulated %v vs analytic %v", sim.A.Mean, exact.Alternating.A)
	}
	if d := math.Abs(sim.B.Mean - exact.Alternating.B); d > 4*sim.B.CI95+1e-9 {
		t.Errorf("B: simulated %v vs analytic %v", sim.B.Mean, exact.Alternating.B)
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	f := site.TwoSite(0.5)
	a, b := twoSpecies(f, 2)
	r1, err := Simulate(f, a, b, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(f, a, b, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.A.Mean != r2.A.Mean || r1.B.Mean != r2.B.Mean {
		t.Error("same seed diverged")
	}
}

func TestErrors(t *testing.T) {
	f := site.TwoSite(0.5)
	good := Species{Name: "ok", K: 2, C: policy.Exclusive{}}
	if _, err := Intakes(f, Species{Name: "bad", K: 0, C: policy.Exclusive{}}, good); !errors.Is(err, ErrPopulation) {
		t.Error("k=0 accepted")
	}
	if _, err := Intakes(site.Values{0.5, 1}, good, good); err == nil {
		t.Error("unsorted patches accepted")
	}
	if _, err := Simulate(f, good, good, 0, 1); !errors.Is(err, ErrRounds) {
		t.Error("rounds=0 accepted")
	}
	bad := Species{Name: "bad", K: 2, C: policy.Exclusive{}, Strategy: strategy.Strategy{0.5, 0.6}}
	if _, err := Intakes(f, bad, good); err == nil {
		t.Error("invalid override strategy accepted")
	}
	short := Species{Name: "short", K: 2, C: policy.Exclusive{}, Strategy: strategy.Strategy{1}}
	if _, err := Intakes(f, short, good); err == nil {
		t.Error("wrong-length strategy accepted")
	}
}

func TestEqualSpeciesSplitEvenly(t *testing.T) {
	// Identical species alternate fairly: equal alternating intakes.
	f := site.Geometric(6, 1, 0.6)
	a := Species{Name: "a", K: 3, C: policy.Exclusive{}}
	b := Species{Name: "b", K: 3, C: policy.Exclusive{}}
	out, err := Intakes(f, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Alternating.A-out.Alternating.B) > 1e-9 {
		t.Errorf("identical species diverge: %+v", out.Alternating)
	}
}
