package spoa_test

import (
	"fmt"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/spoa"
)

// Corollary 5 and Theorem 6 in three lines: the exclusive policy prices
// anarchy at exactly 1, the sharing policy strictly above it.
func ExampleCompute() {
	f := site.SlowDecay(12, 3)
	excl, err := spoa.Compute(f, 3, policy.Exclusive{})
	if err != nil {
		panic(err)
	}
	share, err := spoa.Compute(f, 3, policy.Sharing{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("SPoA(exclusive) = %.6f\n", excl.Ratio)
	fmt.Printf("SPoA(sharing) > 1: %v\n", share.Ratio > 1)
	// Output:
	// SPoA(exclusive) = 1.000000
	// SPoA(sharing) > 1: true
}
