// Package spoa computes the Symmetric Price of Anarchy of congestion
// policies (Section 1.2): the ratio between the best symmetric coverage
// Cover(p*) and the coverage of the worst symmetric Nash equilibrium under
// the policy.
//
// For non-degenerate congestion policies the symmetric equilibrium is the
// unique IFD (Observation 2), so SPoA(C, f) = Cover(p*) / Cover(IFD(C, f)).
// For policies constant on {1..k} (e.g. C == 1) every distribution over the
// argmax sites is an equilibrium; the worst is a point mass, giving
// coverage f(1).
//
// WorstCase estimates sup_f SPoA(C, f) over structured families of value
// functions plus local perturbation refinement — the adversarial search
// behind the Theorem 6 and Section 1.2 experiments.
package spoa

import (
	"context"
	"fmt"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Instance bundles the analysis of one (C, f, k) game.
type Instance struct {
	// F is the value function.
	F site.Values
	// K is the player count.
	K int
	// Equilibrium is the worst symmetric Nash equilibrium under the policy.
	Equilibrium strategy.Strategy
	// EqCoverage is its coverage.
	EqCoverage float64
	// Optimum is the coverage-optimal symmetric strategy p*.
	Optimum strategy.Strategy
	// OptCoverage is Cover(p*).
	OptCoverage float64
	// Ratio is the symmetric price of anarchy OptCoverage / EqCoverage.
	Ratio float64
}

// Compute returns the SPoA instance of the game (f, k, C).
func Compute(f site.Values, k int, c policy.Congestion) (Instance, error) {
	return ComputeContext(context.Background(), f, k, c)
}

// ComputeContext is Compute under a context, checked between the optimum
// and equilibrium solves.
func ComputeContext(ctx context.Context, f site.Values, k int, c policy.Congestion) (Instance, error) {
	if err := ctx.Err(); err != nil {
		return Instance{}, err
	}
	opt, _, err := optimize.MaxCoverage(f, k)
	if err != nil {
		return Instance{}, err
	}
	optCover := coverage.Cover(f, opt, k)

	var eq strategy.Strategy
	if isConstantOnRange(c, k) {
		// Worst symmetric equilibrium: point mass on a single argmax site.
		eq = strategy.Delta(len(f), 0)
	} else {
		eq, _, err = ifd.SolveContext(ctx, f, k, c)
		if err != nil {
			return Instance{}, err
		}
	}
	eqCover := coverage.Cover(f, eq, k)
	if eqCover <= 0 {
		return Instance{}, fmt.Errorf("spoa: equilibrium coverage %v is not positive", eqCover)
	}
	return Instance{
		F:           f.Clone(),
		K:           k,
		Equilibrium: eq,
		EqCoverage:  eqCover,
		Optimum:     opt,
		OptCoverage: optCover,
		Ratio:       optCover / eqCover,
	}, nil
}

func isConstantOnRange(c policy.Congestion, k int) bool {
	c1 := c.At(1)
	for l := 2; l <= k; l++ {
		if c.At(l) != c1 {
			return false
		}
	}
	return true
}

// Families returns the structured value-function families swept by
// WorstCase for a game with m sites and k players: the slow-decay witness
// from the proof of Theorem 6, geometric and Zipf ladders, near-uniform
// linear ramps, and two-site instances (padded to m with tiny values when
// m > 2 is requested elsewhere; here they are emitted at their natural
// size).
func Families(m, k int) []site.Values {
	fams := []site.Values{
		site.SlowDecay(m, k),
		site.Uniform(m, 1),
		site.Linear(m, 1, 0.9),
		site.Linear(m, 1, 0.5),
	}
	for _, r := range []float64{0.99, 0.95, 0.9, 0.8, 0.6, 0.4} {
		fams = append(fams, site.Geometric(m, 1, r))
	}
	for _, s := range []float64{0.25, 0.5, 1, 2} {
		fams = append(fams, site.Zipf(m, 1, s))
	}
	for _, second := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		fams = append(fams, site.TwoSite(second))
	}
	return fams
}

// WorstCase searches for the value function maximizing SPoA(C, f) with k
// players: it scans the structured Families for several site counts, then
// refines the best witness by random multiplicative perturbations
// (re-sorted to stay a valid value function). It returns the best instance
// found. The search is a lower bound on the true sup, which is what the
// experiments need (SPoA > 1 witnesses for Theorem 6).
func WorstCase(c policy.Congestion, k int, siteCounts []int, refineSteps int, seed uint64) (Instance, error) {
	return WorstCaseContext(context.Background(), c, k, siteCounts, refineSteps, seed)
}

// WorstCaseContext is WorstCase under a context: cancellation is checked
// between family evaluations and refinement steps.
func WorstCaseContext(ctx context.Context, c policy.Congestion, k int, siteCounts []int, refineSteps int, seed uint64) (Instance, error) {
	var best Instance
	found := false
	for _, m := range siteCounts {
		for _, f := range Families(m, k) {
			inst, err := ComputeContext(ctx, f, k, c)
			if err != nil {
				return Instance{}, err
			}
			if !found || inst.Ratio > best.Ratio {
				best, found = inst, true
			}
		}
	}
	if !found {
		return Instance{}, fmt.Errorf("spoa: no site counts provided")
	}
	// Local refinement around the best witness.
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	cur := best.F.Clone()
	for step := 0; step < refineSteps; step++ {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		cand := cur.Clone()
		for i := range cand {
			cand[i] *= 1 + 0.1*(rng.Float64()-0.5)
		}
		cand = site.Sorted(cand)
		inst, err := Compute(cand, k, c)
		if err != nil {
			continue // perturbation produced a degenerate game; skip it
		}
		if inst.Ratio > best.Ratio {
			best = inst
			cur = cand
		}
	}
	return best, nil
}
