// Package spoa computes the Symmetric Price of Anarchy of congestion
// policies (Section 1.2): the ratio between the best symmetric coverage
// Cover(p*) and the coverage of the worst symmetric Nash equilibrium under
// the policy.
//
// For non-degenerate congestion policies the symmetric equilibrium is the
// unique IFD (Observation 2), so SPoA(C, f) = Cover(p*) / Cover(IFD(C, f)).
// For policies constant on {1..k} (e.g. C == 1) every distribution over the
// argmax sites is an equilibrium; the worst is a point mass, giving
// coverage f(1).
//
// WorstCase estimates sup_f SPoA(C, f) over structured families of value
// functions plus local perturbation refinement — the adversarial search
// behind the Theorem 6 and Section 1.2 experiments.
package spoa

import (
	"context"
	"fmt"
	"math/rand/v2"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/optimize"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// Instance bundles the analysis of one (C, f, k) game.
type Instance struct {
	// F is the value function.
	F site.Values
	// K is the player count.
	K int
	// Equilibrium is the worst symmetric Nash equilibrium under the policy.
	Equilibrium strategy.Strategy
	// EqCoverage is its coverage.
	EqCoverage float64
	// Optimum is the coverage-optimal symmetric strategy p*.
	Optimum strategy.Strategy
	// OptCoverage is Cover(p*).
	OptCoverage float64
	// Ratio is the symmetric price of anarchy OptCoverage / EqCoverage.
	Ratio float64
}

// Compute returns the SPoA instance of the game (f, k, C).
func Compute(f site.Values, k int, c policy.Congestion) (Instance, error) {
	return ComputeContext(context.Background(), f, k, c)
}

// ComputeContext is Compute under a context, checked between the optimum
// and equilibrium solves. It is ComputeWarm with no seed: every solve runs
// cold.
func ComputeContext(ctx context.Context, f site.Values, k int, c policy.Congestion) (Instance, error) {
	inst, _, err := ComputeWarm(ctx, nil, f, k, c)
	return inst, err
}

// ComputeWarm is ComputeContext threaded through the solver-core warm-state
// contract: prev (and any further seeds, in falling preference order) are
// states of previous solves — of nearby landscapes, or of this very
// landscape. Each internal solve consumes the first seed carrying the part
// it wants: the coverage optimum water-fills from the first seed with an
// optimum part (optimize.MaxCoverageWarm; policy-free, so a state produced
// under any policy qualifies) and the equilibrium solve seeds from the
// first with a compatible equilibrium part (ifd.SolveWarm; policy-bound).
// Per-part selection matters in the steady state of a trajectory: the same
// game's just-solved equilibrium (zero drift, nearly free to re-verify) and
// the previous frame's optimum arrive in different states. The returned
// state carries this analysis's optimum and equilibrium parts for the next
// frame, a later SPoA query on the same game, or the server's
// locality-keyed warm cache.
//
// Nil or incompatible seeds run the respective solve cold; any warm
// bracket that misses falls back cold inside the respective solver, so the
// instance matches ComputeContext up to the solvers' shared numerical
// tolerance on every input.
func ComputeWarm(ctx context.Context, prev *solve.State, f site.Values, k int, c policy.Congestion, more ...*solve.State) (Instance, *solve.State, error) {
	if err := ctx.Err(); err != nil {
		return Instance{}, nil, err
	}
	eqSeed, optSeed := prev, prev
	if !optSeed.CompatibleOpt(f, k) {
		for _, s := range more {
			if s.CompatibleOpt(f, k) {
				optSeed = s
				break
			}
		}
	}
	if !eqSeed.CompatibleEq(f, k, c) {
		for _, s := range more {
			if s.CompatibleEq(f, k, c) {
				eqSeed = s
				break
			}
		}
	}
	opt, lambda, optWarm, err := optimize.MaxCoverageWarm(optSeed, f, k)
	if err != nil {
		return Instance{}, nil, err
	}
	optCover := coverage.Cover(f, opt, k)
	st := solve.New(f, k, c).WithOpt(opt, lambda, optWarm)

	var eq strategy.Strategy
	if solve.ConstantOnRange(c, k) {
		// Worst symmetric equilibrium: point mass on a single argmax site.
		// Deliberately not recorded as an equilibrium part — it is the
		// adversarial pick among the continuum of equilibria, not an IFD a
		// warm solve could seed from.
		eq = strategy.Delta(len(f), 0)
	} else {
		var nu float64
		var eqState *solve.State
		eq, nu, eqState, err = ifd.SolveWarm(ctx, eqSeed, f, k, c)
		if err != nil {
			return Instance{}, nil, err
		}
		st = st.WithEq(eq, nu, eqState.Warmed())
	}
	eqCover := coverage.Cover(f, eq, k)
	if eqCover <= 0 {
		return Instance{}, nil, fmt.Errorf("spoa: equilibrium coverage %v is not positive", eqCover)
	}
	return Instance{
		F:           f.Clone(),
		K:           k,
		Equilibrium: eq,
		EqCoverage:  eqCover,
		Optimum:     opt,
		OptCoverage: optCover,
		Ratio:       optCover / eqCover,
	}, st, nil
}

// Families returns the structured value-function families swept by
// WorstCase for a game with m sites and k players: the slow-decay witness
// from the proof of Theorem 6, geometric and Zipf ladders, near-uniform
// linear ramps, and two-site instances (padded to m with tiny values when
// m > 2 is requested elsewhere; here they are emitted at their natural
// size).
func Families(m, k int) []site.Values {
	fams := []site.Values{
		site.SlowDecay(m, k),
		site.Uniform(m, 1),
		site.Linear(m, 1, 0.9),
		site.Linear(m, 1, 0.5),
	}
	for _, r := range []float64{0.99, 0.95, 0.9, 0.8, 0.6, 0.4} {
		fams = append(fams, site.Geometric(m, 1, r))
	}
	for _, s := range []float64{0.25, 0.5, 1, 2} {
		fams = append(fams, site.Zipf(m, 1, s))
	}
	for _, second := range []float64{0.9, 0.7, 0.5, 0.3, 0.1} {
		fams = append(fams, site.TwoSite(second))
	}
	return fams
}

// WorstCase searches for the value function maximizing SPoA(C, f) with k
// players: it scans the structured Families for several site counts, then
// refines the best witness by random multiplicative perturbations
// (re-sorted to stay a valid value function). It returns the best instance
// found. The search is a lower bound on the true sup, which is what the
// experiments need (SPoA > 1 witnesses for Theorem 6).
func WorstCase(c policy.Congestion, k int, siteCounts []int, refineSteps int, seed uint64) (Instance, error) {
	return WorstCaseContext(context.Background(), c, k, siteCounts, refineSteps, seed)
}

// WorstCaseContext is WorstCase under a context: cancellation is checked
// between family evaluations and refinement steps.
func WorstCaseContext(ctx context.Context, c policy.Congestion, k int, siteCounts []int, refineSteps int, seed uint64) (Instance, error) {
	var best Instance
	found := false
	for _, m := range siteCounts {
		for _, f := range Families(m, k) {
			inst, err := ComputeContext(ctx, f, k, c)
			if err != nil {
				return Instance{}, err
			}
			if !found || inst.Ratio > best.Ratio {
				best, found = inst, true
			}
		}
	}
	if !found {
		return Instance{}, fmt.Errorf("spoa: no site counts provided")
	}
	// Local refinement around the best witness.
	rng := rand.New(rand.NewPCG(seed, 0xda3e39cb94b95bdb))
	cur := best.F.Clone()
	for step := 0; step < refineSteps; step++ {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		cand := cur.Clone()
		for i := range cand {
			cand[i] *= 1 + 0.1*(rng.Float64()-0.5)
		}
		cand = site.Sorted(cand)
		inst, err := Compute(cand, k, c)
		if err != nil {
			continue // perturbation produced a degenerate game; skip it
		}
		if inst.Ratio > best.Ratio {
			best = inst
			cur = cand
		}
	}
	return best, nil
}
