package spoa

import (
	"math/rand/v2"
	"testing"

	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

// TestCorollary5ExclusiveHasSPoAOne: SPoA(Cexc, f) = 1 for every f — the
// IFD of the exclusive policy is the coverage optimum.
func TestCorollary5ExclusiveHasSPoAOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	games := []site.Values{
		site.TwoSite(0.3),
		site.TwoSite(0.5),
		site.Geometric(10, 1, 0.7),
		site.Zipf(15, 1, 1),
		site.Uniform(8, 2),
		site.SlowDecay(20, 4),
	}
	for i := 0; i < 10; i++ {
		games = append(games, site.Random(rng, 2+rng.IntN(20), 0.1, 4))
	}
	for _, f := range games {
		for _, k := range []int{2, 3, 5, 9} {
			inst, err := Compute(f, k, policy.Exclusive{})
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqual(inst.Ratio, 1, 1e-6) {
				t.Errorf("M=%d k=%d: SPoA(Cexc) = %.9f, want 1", len(f), k, inst.Ratio)
			}
		}
	}
}

// TestTheorem6NonExclusivePoliciesHaveSPoAAboveOne: every other congestion
// policy admits a value function with SPoA strictly above 1; the slow-decay
// family from the proof of Theorem 6 is a reliable witness.
func TestTheorem6NonExclusivePoliciesHaveSPoAAboveOne(t *testing.T) {
	k := 4
	m := 4 * k // comfortably above the W >= 2k regime of the proof
	f := site.SlowDecay(m, k)
	nonExclusive := []policy.Congestion{
		policy.Sharing{},
		policy.Constant{},
		policy.TwoPoint{C2: 0.25},
		policy.TwoPoint{C2: -0.25},
		policy.PowerLaw{Beta: 2},
		policy.Cooperative{Gamma: 0.9},
		policy.Aggressive{Penalty: 0.5},
	}
	for _, c := range nonExclusive {
		inst, err := Compute(f, k, c)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if inst.Ratio <= 1+1e-9 {
			t.Errorf("%s: SPoA = %.12f on slow-decay f, want > 1", c.Name(), inst.Ratio)
		}
	}
}

func TestSharingSPoAAtMostTwo(t *testing.T) {
	// Section 1.2 (via Vetta): SPoA(Cshare) <= 2.
	rng := rand.New(rand.NewPCG(7, 9))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.IntN(25)
		k := 2 + rng.IntN(10)
		f := site.Random(rng, m, 0.05, 5)
		inst, err := Compute(f, k, policy.Sharing{})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Ratio > 2+1e-9 {
			t.Fatalf("M=%d k=%d: SPoA(share) = %v > 2", m, k, inst.Ratio)
		}
		if inst.Ratio < 1-1e-9 {
			t.Fatalf("SPoA below 1: %v", inst.Ratio)
		}
	}
}

func TestConstantPolicyAnarchyGrowsWithK(t *testing.T) {
	// Section 1.2: C == 1 concentrates the equilibrium on site 1; on
	// near-uniform values the lost coverage scales like k.
	prev := 0.0
	for _, k := range []int{2, 4, 8, 16} {
		m := 4 * k
		f := site.Linear(m, 1, 0.95) // slowly decreasing
		inst, err := Compute(f, k, policy.Constant{})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Ratio <= prev {
			t.Errorf("k=%d: SPoA %v did not grow (prev %v)", k, inst.Ratio, prev)
		}
		prev = inst.Ratio
	}
	// At k=16 the gap should be substantial (Omega(k) scaling).
	if prev < 8 {
		t.Errorf("SPoA at k=16 = %v, expected large (~k) gap", prev)
	}
}

func TestSPoAAlwaysAtLeastOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(10)
		k := 2 + rng.IntN(6)
		f := site.Random(rng, m, 0.2, 3)
		for _, c := range policy.Standard() {
			inst, err := Compute(f, k, c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if inst.Ratio < 1-1e-7 {
				t.Fatalf("%s M=%d k=%d: SPoA = %v < 1", c.Name(), m, k, inst.Ratio)
			}
		}
	}
}

func TestComputeInstanceFields(t *testing.T) {
	f := site.TwoSite(0.5)
	inst, err := Compute(f, 2, policy.Sharing{})
	if err != nil {
		t.Fatal(err)
	}
	if inst.K != 2 || len(inst.F) != 2 {
		t.Errorf("instance metadata: %+v", inst)
	}
	if inst.OptCoverage < inst.EqCoverage-1e-12 {
		t.Errorf("optimum %v below equilibrium %v", inst.OptCoverage, inst.EqCoverage)
	}
	if err := inst.Equilibrium.Validate(); err != nil {
		t.Errorf("equilibrium invalid: %v", err)
	}
	if err := inst.Optimum.Validate(); err != nil {
		t.Errorf("optimum invalid: %v", err)
	}
}

func TestWorstCaseFindsGapForSharing(t *testing.T) {
	inst, err := WorstCase(policy.Sharing{}, 3, []int{2, 6, 12}, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Ratio <= 1.005 {
		t.Errorf("worst-case sharing SPoA = %v, expected a visible gap", inst.Ratio)
	}
	if inst.Ratio > 2+1e-9 {
		t.Errorf("sharing SPoA exceeded Vetta bound: %v", inst.Ratio)
	}
}

func TestWorstCaseExclusiveStaysAtOne(t *testing.T) {
	inst, err := WorstCase(policy.Exclusive{}, 3, []int{2, 5, 10}, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(inst.Ratio, 1, 1e-6) {
		t.Errorf("exclusive worst case = %v, want 1", inst.Ratio)
	}
}

func TestWorstCaseNoSiteCounts(t *testing.T) {
	if _, err := WorstCase(policy.Sharing{}, 3, nil, 10, 1); err == nil {
		t.Error("empty site counts accepted")
	}
}

func TestFamiliesAreValid(t *testing.T) {
	for _, m := range []int{2, 5, 30} {
		for _, k := range []int{2, 6} {
			for i, f := range Families(m, k) {
				if err := f.Validate(); err != nil {
					t.Errorf("family %d (m=%d,k=%d) invalid: %v", i, m, k, err)
				}
			}
		}
	}
}
