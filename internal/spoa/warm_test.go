package spoa

import (
	"context"
	"math"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
)

// allPolicies returns one representative of each of the 8 congestion
// families the codec knows.
func allPolicies(t *testing.T) []policy.Congestion {
	t.Helper()
	table, err := policy.NewTable([]float64{1, 0.55, 0.2}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
		policy.TwoPoint{C2: 0.35},
		policy.PowerLaw{Beta: 1.4},
		policy.Cooperative{Gamma: 0.75},
		policy.Aggressive{Penalty: 0.3},
		table,
	}
}

// TestComputeWarmMatchesColdAcrossPolicies chains ComputeWarm along a
// drifting landscape for every policy family and checks each frame against
// the cold ComputeContext: the warm-start threading must never change an
// answer beyond solver tolerance.
func TestComputeWarmMatchesColdAcrossPolicies(t *testing.T) {
	ctx := context.Background()
	const (
		m, k   = 16, 9
		frames = 24
		relTol = 1e-7
	)
	base := site.Geometric(m, 1, 0.9)
	for _, c := range allPolicies(t) {
		t.Run(c.Name(), func(t *testing.T) {
			var st *solve.State
			warmed := 0
			for frame := 0; frame < frames; frame++ {
				f := site.Values(site.Drifted(base, frame, 0.02))
				cold, err := ComputeContext(ctx, f, k, c)
				if err != nil {
					t.Fatalf("frame %d cold: %v", frame, err)
				}
				warm, next, err := ComputeWarm(ctx, st, f, k, c)
				if err != nil {
					t.Fatalf("frame %d warm: %v", frame, err)
				}
				if next == nil || !next.HasOpt() {
					t.Fatalf("frame %d: warm compute returned no optimum state", frame)
				}
				if next.Warmed() {
					warmed++
				}
				for _, q := range []struct {
					name      string
					got, want float64
				}{
					{"ratio", warm.Ratio, cold.Ratio},
					{"eq coverage", warm.EqCoverage, cold.EqCoverage},
					{"opt coverage", warm.OptCoverage, cold.OptCoverage},
				} {
					if d := math.Abs(q.got-q.want) / (1 + math.Abs(q.want)); d > relTol {
						t.Fatalf("frame %d: %s diverged by %g (warm %v vs cold %v)",
							frame, q.name, d, q.got, q.want)
					}
				}
				if d := warm.Equilibrium.LInf(cold.Equilibrium); d > 1e-6 {
					t.Fatalf("frame %d: equilibria diverged by %g", frame, d)
				}
				if d := warm.Optimum.LInf(cold.Optimum); d > 1e-6 {
					t.Fatalf("frame %d: optima diverged by %g", frame, d)
				}
				st = next
			}
			// The degenerate families answer in closed form and never take
			// the warm equilibrium path; everything else must engage it.
			if !solve.ConstantOnRange(c, k) && policy.IsExclusive(c, k) == false && warmed < frames-2 {
				t.Fatalf("warm path engaged on only %d/%d frames", warmed, frames)
			}
		})
	}
}

// TestComputeWarmSeedsOwnLandscape verifies the intra-frame reuse the server
// path depends on: a state carrying the equilibrium of this very landscape
// (from a prior IFD solve) makes ComputeWarm's internal equilibrium re-solve
// warm, and the instance still matches cold.
func TestComputeWarmSeedsOwnLandscape(t *testing.T) {
	ctx := context.Background()
	f := site.Values(site.Geometric(12, 1, 0.8))
	k := 7
	c := policy.Sharing{}
	cold, err := ComputeContext(ctx, f, k, c)
	if err != nil {
		t.Fatal(err)
	}
	seed := solve.New(f, k, c).WithEq(cold.Equilibrium, 0, false)
	// Nu = 0 is a deliberately poor value seed; the per-site hints still
	// hold and the bracket verification protects correctness either way.
	warm, st, err := ComputeWarm(ctx, seed, f, k, c)
	if err != nil {
		t.Fatal(err)
	}
	if d := warm.Equilibrium.LInf(cold.Equilibrium); d > 1e-6 {
		t.Fatalf("self-seeded equilibrium diverged by %g", d)
	}
	if d := math.Abs(warm.Ratio-cold.Ratio) / (1 + cold.Ratio); d > 1e-9 {
		t.Fatalf("self-seeded ratio diverged by %g", d)
	}
	if !st.HasEq() || !st.HasOpt() {
		t.Fatalf("combined state is missing parts: eq=%v opt=%v", st.HasEq(), st.HasOpt())
	}
}
