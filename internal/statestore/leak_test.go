package statestore

import (
	"testing"

	"dispersal/internal/leakcheck"
)

// TestMain fails the package if any test leaves a goroutine running — the
// package owns exactly one (the snapshot loop), so a leak here means Close
// or Start broke.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
