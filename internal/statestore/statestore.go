// Package statestore persists the dispersald warm cache across restarts:
// periodic atomic snapshots of the locality-keyed solver states
// (internal/warmcache) to a file under the server's -state-dir, and a
// tolerant load at boot so a restarted replica answers its first
// repeat-locality request warm instead of re-collecting its hot buckets
// cold.
//
// Snapshots are advisory, like everything else in the warm tier: a missing,
// stale, truncated or corrupted snapshot can only cost warm attempts, never
// correctness, so Load salvages every intact record up to the first damaged
// one and Save never leaves a half-written file behind (temp file in the
// same directory, fsync, rename).
//
// Snapshot layout (version 1, little-endian, varint = binary.Uvarint):
//
//	magic   "DWSS1" (5 bytes; the version is part of the magic)
//	records, each:
//	  keyLen  varint (1..MaxKeyLen), then keyLen bytes: the locality key
//	  nStates varint (1..warmcache.CandidatesPerBucket)
//	  states, each: stLen varint, then stLen bytes of statewire encoding
//
// Records are ordered most-recently-used first, so a truncated tail loses
// the coldest buckets.
package statestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"dispersal/internal/statewire"
	"dispersal/internal/warmcache"
)

// Magic identifies a version-1 snapshot file.
const Magic = "DWSS1"

// SnapshotFile is the file name Save and Load use inside a state directory.
const SnapshotFile = "warmstate.snap"

// MaxKeyLen bounds one locality key on disk. Keys are JSON spec shapes —
// quantized buckets for up to speccodec.MaxSites sites at ~21 bytes each
// worst case — so the bound is the same order as a spec request body.
const MaxKeyLen = 4 << 20

// ErrCorrupt reports a snapshot whose header is unusable (wrong magic or
// unknown version). Damage after a valid header is not an error: Load keeps
// the intact prefix.
var ErrCorrupt = errors.New("statestore: unusable snapshot")

// Path returns the snapshot path inside dir.
func Path(dir string) string { return filepath.Join(dir, SnapshotFile) }

// Save atomically writes the entries (as produced by warmcache.Entries,
// most-recently-used first) to Path(dir), creating dir if needed. Entries
// whose states fail to encode are skipped — a state too degenerate to
// encode is not worth persisting — so Save fails only on I/O.
func Save(dir string, entries []warmcache.Entry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, Magic...)
	for _, e := range entries {
		if len(e.Key) == 0 || len(e.Key) > MaxKeyLen {
			continue
		}
		encs := make([][]byte, 0, len(e.States))
		for _, st := range e.States {
			if enc, err := statewire.Encode(st); err == nil {
				encs = append(encs, enc)
			}
		}
		if len(encs) == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(len(e.Key)))
		buf = append(buf, e.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(encs)))
		for _, enc := range encs {
			buf = binary.AppendUvarint(buf, uint64(len(enc)))
			buf = append(buf, enc...)
		}
	}

	tmp, err := os.CreateTemp(dir, SnapshotFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("statestore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("statestore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), Path(dir)); err != nil {
		return fmt.Errorf("statestore: %w", err)
	}
	return nil
}

// Load reads the snapshot under dir, tolerantly: a missing file yields no
// entries and no error; a file with a wrong or future header yields
// ErrCorrupt (the caller logs and boots cold); damage inside the record
// stream ends the load with every record before it intact. Individual
// states that fail statewire validation are dropped record-locally.
func Load(dir string) ([]warmcache.Entry, error) {
	data, err := os.ReadFile(Path(dir))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("statestore: %w", err)
	}
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic in %s", ErrCorrupt, Path(dir))
	}
	off := len(Magic)
	var entries []warmcache.Entry

	readUvarint := func(max uint64) (uint64, bool) {
		v, n := binary.Uvarint(data[off:])
		if n <= 0 || v > max {
			return 0, false
		}
		off += n
		return v, true
	}

	for off < len(data) {
		keyLen, ok := readUvarint(MaxKeyLen)
		if !ok || keyLen == 0 || off+int(keyLen) > len(data) {
			break
		}
		key := string(data[off : off+int(keyLen)])
		off += int(keyLen)
		nStates, ok := readUvarint(warmcache.CandidatesPerBucket)
		if !ok || nStates == 0 {
			break
		}
		e := warmcache.Entry{Key: key}
		damaged := false
		for i := uint64(0); i < nStates; i++ {
			stLen, ok := readUvarint(uint64(statewire.MaxEncodedSize()))
			if !ok || off+int(stLen) > len(data) {
				damaged = true
				break
			}
			if st, err := statewire.Decode(data[off : off+int(stLen)]); err == nil {
				e.States = append(e.States, st)
			}
			off += int(stLen)
		}
		if len(e.States) > 0 {
			entries = append(entries, e)
		}
		if damaged {
			break
		}
	}
	return entries, nil
}

// Seed replays entries into cache, oldest candidates first, so the cache's
// recency order and per-bucket candidate order match the snapshot's. It
// returns the number of states seeded.
func Seed(cache *warmcache.Cache, entries []warmcache.Entry) int {
	n := 0
	// Entries are MRU-first; replay back to front so the hottest bucket
	// ends up most recent.
	for i := len(entries) - 1; i >= 0; i-- {
		states := entries[i].States
		for j := len(states) - 1; j >= 0; j-- {
			cache.Store(entries[i].Key, states[j])
			n++
		}
	}
	return n
}

// Snapshotter periodically persists a warm cache to a state directory.
// Construct with NewSnapshotter, then Start; Close stops the loop and
// writes one final snapshot.
type Snapshotter struct {
	dir      string
	interval time.Duration
	cache    *warmcache.Cache
	log      *slog.Logger

	mu      sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
	closed  bool
}

// DefaultInterval is the snapshot cadence when NewSnapshotter is given a
// non-positive interval.
const DefaultInterval = 30 * time.Second

// NewSnapshotter builds a snapshotter for cache under dir. interval <= 0
// selects DefaultInterval; a nil logger discards log lines.
func NewSnapshotter(dir string, interval time.Duration, cache *warmcache.Cache, logger *slog.Logger) *Snapshotter {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	return &Snapshotter{
		dir:      dir,
		interval: interval,
		cache:    cache,
		log:      logger,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the periodic snapshot loop. It may be called once.
func (s *Snapshotter) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	go func() {
		defer close(s.done)
		// Snapshots are advisory: a panic out of a snapshot must not kill
		// the replica, and done must still close so Close never hangs.
		defer func() {
			if r := recover(); r != nil {
				s.log.Error("warm-state snapshot loop panicked", "panic", fmt.Sprint(r))
			}
		}()
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.snapshot()
			case <-s.stop:
				return
			}
		}
	}()
}

// SaveNow writes one snapshot immediately.
func (s *Snapshotter) SaveNow() error {
	return Save(s.dir, s.cache.Entries())
}

// snapshot is SaveNow with failures logged rather than returned — inside
// the loop there is no caller to hand them to.
func (s *Snapshotter) snapshot() {
	if err := s.SaveNow(); err != nil {
		s.log.Warn("warm-state snapshot failed", "dir", s.dir, "err", err)
	}
}

// Close stops the loop and writes a final snapshot, so a clean shutdown
// persists everything the last tick missed. Safe to call more than once.
func (s *Snapshotter) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	started := s.started
	s.mu.Unlock()
	if started {
		close(s.stop)
		<-s.done
	}
	return s.SaveNow()
}
