package statestore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
	"dispersal/internal/warmcache"
)

func testState(nu float64) *solve.State {
	return solve.New(site.Values{1, 0.5}, 2, policy.Sharing{}).
		WithEq(strategy.Strategy{0.75, 0.25}, nu, false)
}

// fillCache builds a cache with two buckets, one holding two candidates.
func fillCache(t *testing.T) *warmcache.Cache {
	t.Helper()
	c := warmcache.New(8)
	c.Store("bucket-a", testState(0.1))
	c.Store("bucket-a", testState(0.2))
	c.Store("bucket-b", testState(0.3))
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := fillCache(t)
	if err := Save(dir, c.Entries()); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	// MRU-first: bucket-b was stored last.
	if entries[0].Key != "bucket-b" || entries[1].Key != "bucket-a" {
		t.Fatalf("order = %q, %q", entries[0].Key, entries[1].Key)
	}
	if len(entries[1].States) != 2 || entries[1].States[0].Nu() != 0.2 || entries[1].States[1].Nu() != 0.1 {
		t.Fatalf("bucket-a candidates wrong: %+v", entries[1].States)
	}

	// Seeding a fresh cache reproduces the original's picks.
	fresh := warmcache.New(8)
	if n := Seed(fresh, entries); n != 3 {
		t.Fatalf("seeded %d states, want 3", n)
	}
	if st := fresh.Lookup("bucket-a", nil); st == nil || st.Nu() != 0.2 {
		t.Fatalf("seeded cache newest candidate: %+v", st)
	}
	if got := fresh.Peek("bucket-a"); len(got) != 2 || got[1].Nu() != 0.1 {
		t.Fatalf("seeded cache lost the second candidate: %+v", got)
	}
}

// TestSeedPreservesRecencyAcrossSaveLoad pins the replay direction: the
// snapshot is MRU-first, so Seed must replay it back to front or every
// restart would invert the cache's recency order — and the buckets evicted
// under the next capacity squeeze would be the hottest ones, not the
// coldest. The small-cache half fails loudly under a forward replay: only
// the coldest buckets would survive.
func TestSeedPreservesRecencyAcrossSaveLoad(t *testing.T) {
	dir := t.TempDir()
	src := warmcache.New(8)
	for i := 0; i < 6; i++ {
		src.Store(fmt.Sprintf("bucket-%d", i), testState(float64(i+1)/10))
	}
	if err := Save(dir, src.Entries()); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Same-capacity restore: the whole recency order survives verbatim.
	same := warmcache.New(8)
	Seed(same, entries)
	want := src.Keys()
	got := same.Keys()
	if len(got) != len(want) {
		t.Fatalf("restored %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recency order inverted at %d: got %v, want %v", i, got, want)
		}
	}

	// Capacity-squeezed restore: the survivors must be the hottest buckets.
	small := warmcache.New(3)
	Seed(small, entries)
	for i, key := range small.Keys() {
		if key != want[i] {
			t.Fatalf("capacity squeeze kept %v; want the hottest %v", small.Keys(), want[:3])
		}
	}
	if small.Len() != 3 {
		t.Fatalf("squeezed cache holds %d buckets, want 3", small.Len())
	}
}

func TestLoadMissingFileIsEmptyNotError(t *testing.T) {
	entries, err := Load(t.TempDir())
	if err != nil || entries != nil {
		t.Fatalf("missing snapshot: entries=%v err=%v", entries, err)
	}
}

func TestLoadRejectsForeignHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(Path(dir), []byte("NOTASNAPSHOT"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("foreign header loaded")
	}
	// A future version is equally unusable.
	if err := os.WriteFile(Path(dir), []byte("DWSS2"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("future version loaded")
	}
}

// TestLoadKeepsIntactPrefixOfTruncatedFile: records before the damage
// survive, the rest is dropped, and no truncation point panics or errors.
func TestLoadKeepsIntactPrefixOfTruncatedFile(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, fillCache(t).Entries()); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	sawPartial := false
	for cut := len(Magic); cut < len(full); cut++ {
		if err := os.WriteFile(Path(dir), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		entries, err := Load(dir)
		if err != nil {
			t.Fatalf("truncation to %d bytes errored: %v", cut, err)
		}
		total := 0
		for _, e := range entries {
			total += len(e.States)
		}
		if total > 0 {
			sawPartial = true
		}
		if total == 3 {
			t.Fatalf("truncation to %d/%d bytes loaded all 3 states", cut, len(full))
		}
	}
	if !sawPartial {
		t.Fatal("no truncation point salvaged the intact first record")
	}
}

// TestLoadDropsCorruptStateKeepsRest: flipping bytes inside one state's
// payload must not take down the other records.
func TestLoadDropsCorruptStateKeepsRest(t *testing.T) {
	dir := t.TempDir()
	if err := Save(dir, fillCache(t).Entries()); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the first record's state payload: its statewire magic starts
	// right after the file magic, the key, and three varints. Finding it by
	// scanning for the statewire magic is robust to layout details.
	idx := -1
	for i := len(Magic); i+4 <= len(full); i++ {
		if string(full[i:i+4]) == "DWS1" {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no statewire payload found in snapshot")
	}
	full[idx] = 'X'
	if err := os.WriteFile(Path(dir), full, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		total += len(e.States)
	}
	if total != 2 {
		t.Fatalf("salvaged %d states, want 2 (one corrupted away)", total)
	}
}

func TestSaveIsAtomicNoTempLeftBehind(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 3; i++ {
		if err := Save(dir, fillCache(t).Entries()); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || filepath.Base(files[0]) != SnapshotFile {
		t.Fatalf("state dir holds %v, want only %s", files, SnapshotFile)
	}
}

func TestSnapshotterWritesPeriodicallyAndOnClose(t *testing.T) {
	dir := t.TempDir()
	c := warmcache.New(8)
	s := NewSnapshotter(dir, 10*time.Millisecond, c, nil)
	s.Start()
	c.Store("k", testState(0.5))
	deadline := time.Now().Add(5 * time.Second)
	for {
		if entries, err := Load(dir); err == nil && len(entries) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic snapshot never appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The final snapshot on Close captures stores after the last tick.
	c.Store("k2", testState(0.6))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(dir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("final snapshot: entries=%d err=%v", len(entries), err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close failed:", err)
	}
}
