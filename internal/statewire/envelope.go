// The push envelope: the body of POST /v1/warmstate, a batch of
// locality-keyed states one replica pushes to another (internal/peer's
// ownership-routed replication). Where the single-state encoding answers a
// pull for one known key, the envelope carries the keys too — the receiver
// learns which buckets it is being given — plus a hop budget that bounds
// re-forwarding: a non-owner solver sends hops=1 to the key's owner, the
// owner re-pushes to its followers with hops=0, and nothing propagates
// further, so no push can loop however the fleet is configured.
//
// Envelope layout (version 1, little-endian, varint = binary.Uvarint):
//
//	magic   "DWPE1" (5 bytes; the version is part of the magic)
//	hops    varint (0..MaxEnvelopeHops)
//	count   varint (1..MaxEnvelopeRecords)
//	records, each:
//	  keyLen varint (1..MaxEnvelopeKeyLen), then keyLen bytes: the key
//	  stLen  varint, then stLen bytes: one complete single-state encoding
//
// Nothing may follow the last record. Decoding is as strict as Decode's:
// every record's state passes the full single-state validation, varints
// must be canonical, and any violation rejects the whole envelope —
// best-effort replication makes a dropped batch cheap and a
// garbage-tolerant parser expensive.

package statewire

import (
	"encoding/binary"
	"fmt"

	"dispersal/internal/solve"
)

// EnvelopeMagic identifies a version-1 push envelope.
const EnvelopeMagic = "DWPE1"

// Bounds enforced by DecodeEnvelope (and by EncodeEnvelope, so a sender
// can never build an envelope its peers must reject).
const (
	// MaxEnvelopeRecords bounds one batch; pushers flush far below it.
	MaxEnvelopeRecords = 128
	// MaxEnvelopeHops bounds re-forwarding: 1 is enough for the only
	// multi-hop route (solver -> owner -> followers).
	MaxEnvelopeHops = 1
	// MaxEnvelopeKeyLen bounds one key, sized like statestore's key bound:
	// locality keys are JSON spec shapes, ~21 bytes per site.
	MaxEnvelopeKeyLen = 4 << 20
)

// maxEnvelopeBytes is the reader-side ceiling on a whole envelope. It is
// far below MaxEnvelopeRecords * worst-case record — a batch of
// worst-case states has no business on the push path — but comfortably
// above any batch a real pusher flushes.
const maxEnvelopeBytes = 8 << 20

// MaxEnvelopeBytes returns the largest envelope DecodeEnvelope accepts;
// readers of untrusted streams should refuse anything longer before
// buffering it.
func MaxEnvelopeBytes() int { return maxEnvelopeBytes }

// Record is one keyed state of a push envelope.
type Record struct {
	// Key is the warm-cache locality key the state was stored under.
	Key string
	// State is the pushed solver-core state.
	State *solve.State
}

// EncodeEnvelope renders a push envelope. Unlike the tolerant snapshot
// writer, it fails on any unencodable input — empty or oversized batches,
// out-of-range hops, empty or oversized keys, states Encode rejects — the
// pusher controls everything it batches, so a bad record is a bug to
// surface, not data to skip.
func EncodeEnvelope(hops int, recs []Record) ([]byte, error) {
	if hops < 0 || hops > MaxEnvelopeHops {
		return nil, fmt.Errorf("%w: hops %d outside [0, %d]", ErrEncode, hops, MaxEnvelopeHops)
	}
	if len(recs) == 0 || len(recs) > MaxEnvelopeRecords {
		return nil, fmt.Errorf("%w: %d records outside [1, %d]", ErrEncode, len(recs), MaxEnvelopeRecords)
	}
	buf := make([]byte, 0, 1<<12)
	buf = append(buf, EnvelopeMagic...)
	buf = binary.AppendUvarint(buf, uint64(hops))
	buf = binary.AppendUvarint(buf, uint64(len(recs)))
	for i, rec := range recs {
		if len(rec.Key) == 0 || len(rec.Key) > MaxEnvelopeKeyLen {
			return nil, fmt.Errorf("%w: record %d key length %d outside [1, %d]", ErrEncode, i, len(rec.Key), MaxEnvelopeKeyLen)
		}
		enc, err := Encode(rec.State)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(rec.Key)))
		buf = append(buf, rec.Key...)
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	if len(buf) > maxEnvelopeBytes {
		return nil, fmt.Errorf("%w: envelope of %d bytes exceeds %d", ErrEncode, len(buf), maxEnvelopeBytes)
	}
	return buf, nil
}

// DecodeEnvelope parses one version-1 push envelope, returning its hop
// budget and records. Every structural or semantic violation — including
// any record's state failing the full single-state validation — rejects
// the whole envelope with an error wrapping ErrDecode.
func DecodeEnvelope(data []byte) (hops int, recs []Record, err error) {
	if len(data) > maxEnvelopeBytes {
		return 0, nil, fmt.Errorf("%w: envelope of %d bytes exceeds %d", ErrDecode, len(data), maxEnvelopeBytes)
	}
	r := &reader{data: data}
	if magic := r.bytes(len(EnvelopeMagic)); r.err != nil || string(magic) != EnvelopeMagic {
		if r.err == nil {
			r.fail("bad envelope magic %q", magic)
		}
		return 0, nil, r.err
	}
	hops = int(r.uvarint("hops", MaxEnvelopeHops))
	count := int(r.uvarint("record count", MaxEnvelopeRecords))
	if r.err == nil && count < 1 {
		r.fail("record count %d < 1", count)
	}
	if r.err != nil {
		return 0, nil, r.err
	}
	recs = make([]Record, 0, count)
	for i := 0; i < count; i++ {
		keyLen := int(r.uvarint("key length", MaxEnvelopeKeyLen))
		if r.err == nil && keyLen < 1 {
			r.fail("record %d key length %d < 1", i, keyLen)
		}
		key := string(r.bytes(keyLen))
		stLen := int(r.uvarint("state length", maxEncodedSize))
		body := r.bytes(stLen)
		if r.err != nil {
			return 0, nil, r.err
		}
		st, err := Decode(body)
		if err != nil {
			return 0, nil, fmt.Errorf("record %d: %w", i, err)
		}
		recs = append(recs, Record{Key: key, State: st})
	}
	if r.off != len(data) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes after the last record", ErrDecode, len(data)-r.off)
	}
	return hops, recs, nil
}
