package statewire

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// envState builds a small distinct state for envelope tests.
func envState(nu float64) *solve.State {
	return solve.New(site.Values{1, 0.5}, 2, policy.Sharing{}).
		WithEq(strategy.Strategy{0.75, 0.25}, nu, false)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	recs := []Record{
		{Key: "warm:a", State: envState(0.1)},
		{Key: "warm:b", State: envState(0.2)},
		{Key: "warm:c", State: envState(0.3)},
	}
	for hops := 0; hops <= MaxEnvelopeHops; hops++ {
		enc, err := EncodeEnvelope(hops, recs)
		if err != nil {
			t.Fatal(err)
		}
		gotHops, got, err := DecodeEnvelope(enc)
		if err != nil {
			t.Fatal(err)
		}
		if gotHops != hops {
			t.Fatalf("hops = %d, want %d", gotHops, hops)
		}
		if len(got) != len(recs) {
			t.Fatalf("decoded %d records, want %d", len(got), len(recs))
		}
		for i, rec := range got {
			if rec.Key != recs[i].Key {
				t.Fatalf("record %d key = %q, want %q", i, rec.Key, recs[i].Key)
			}
			statesEqual(t, recs[i].State, rec.State)
		}
	}
}

func TestEncodeEnvelopeRejectsBadInput(t *testing.T) {
	ok := []Record{{Key: "warm:a", State: envState(0.1)}}
	cases := []struct {
		name string
		hops int
		recs []Record
	}{
		{"negative hops", -1, ok},
		{"hops over budget", MaxEnvelopeHops + 1, ok},
		{"no records", 0, nil},
		{"too many records", 0, make([]Record, MaxEnvelopeRecords+1)},
		{"empty key", 0, []Record{{Key: "", State: envState(0.1)}}},
		{"nil state", 0, []Record{{Key: "warm:a", State: nil}}},
	}
	for _, tc := range cases {
		if _, err := EncodeEnvelope(tc.hops, tc.recs); err == nil {
			t.Errorf("%s: encoded without error", tc.name)
		}
	}
}

func TestDecodeEnvelopeStrictness(t *testing.T) {
	good, err := EncodeEnvelope(1, []Record{{Key: "warm:a", State: envState(0.1)}})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte) {
		t.Helper()
		if _, _, err := DecodeEnvelope(data); !errors.Is(err, ErrDecode) {
			t.Errorf("%s: err = %v, want ErrDecode", name, err)
		}
	}
	check("empty", nil)
	check("bad magic", append([]byte("XXXXX"), good[5:]...))
	check("single-state magic", []byte(Magic))
	check("truncated", good[:len(good)-3])
	check("trailing bytes", append(append([]byte{}, good...), 0))

	// A corrupted inner state must reject the whole envelope: break the
	// single-state magic where the record's payload begins.
	bad := append([]byte{}, good...)
	inner := bytes.Index(bad, []byte(Magic))
	if inner < 0 {
		t.Fatal("no inner state magic in a valid envelope")
	}
	bad[inner] ^= 0xFF
	check("corrupt inner state", bad)

	// Hop budgets beyond MaxEnvelopeHops are rejected even when well-formed.
	overHops := append([]byte{}, EnvelopeMagic...)
	overHops = append(overHops, byte(MaxEnvelopeHops+1))
	overHops = append(overHops, good[len(EnvelopeMagic)+1:]...)
	check("hops over budget", overHops)

	// Oversized declared payload.
	huge := make([]byte, maxEnvelopeBytes+1)
	copy(huge, EnvelopeMagic)
	check("oversized envelope", huge)
}

func TestDecodeEnvelopeNeverPanics(t *testing.T) {
	good, err := EncodeEnvelope(0, []Record{
		{Key: "warm:a", State: envState(0.1)},
		{Key: "warm:b", State: envState(0.2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation point and every single-byte corruption must fail
	// cleanly (or, for corruption that lands in a float's mantissa, decode
	// to something — never panic).
	for i := range good {
		if _, _, err := DecodeEnvelope(good[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
		mut := append([]byte{}, good...)
		mut[i] ^= 0x01
		_, _, _ = DecodeEnvelope(mut)
	}
}

func TestEnvelopeBatchAtLimit(t *testing.T) {
	recs := make([]Record, MaxEnvelopeRecords)
	for i := range recs {
		recs[i] = Record{Key: fmt.Sprintf("warm:k%d", i), State: envState(float64(i) / 1000)}
	}
	enc, err := EncodeEnvelope(0, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) > MaxEnvelopeBytes() {
		t.Fatalf("full batch of %d bytes exceeds MaxEnvelopeBytes %d", len(enc), MaxEnvelopeBytes())
	}
	_, got, err := DecodeEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != MaxEnvelopeRecords {
		t.Fatalf("decoded %d records, want %d", len(got), MaxEnvelopeRecords)
	}
}
