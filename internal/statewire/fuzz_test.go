package statewire

import (
	"bytes"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// FuzzDecode asserts the decoder's two contracts on arbitrary bytes: it
// never panics, and anything it accepts re-encodes canonically — encode
// after decode reproduces the accepted bytes exactly, so there is one wire
// spelling per state and a forwarded (decode-then-encode) payload is
// byte-identical to the original.
func FuzzDecode(f *testing.F) {
	seed := []*solve.State{
		solve.New(site.Values{1}, 1, policy.Exclusive{}),
		solve.New(site.Values{1, 0.5, 0.25}, 3, policy.Sharing{}).
			WithEq(strategy.Strategy{0.6, 0.3, 0.1}, 0.2, true).
			WithOpt(strategy.Strategy{0.5, 0.3, 0.2}, 0.7, false).
			WithSigma(2, 1.5, 0.3),
		solve.New(site.Values{1, 1, 0.5}, 5, policy.TwoPoint{C2: 0.25}).
			WithEq(strategy.Strategy{0.4, 0.4, 0.2}, 0.3, false),
	}
	for _, st := range seed {
		enc, err := Encode(st)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		f.Add(enc[:len(enc)/2])
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(st)
		if err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("round trip is not canonical:\n in  %x\n out %x", data, enc)
		}
		if _, err := Decode(enc); err != nil {
			t.Fatalf("re-encoded state does not decode: %v", err)
		}
	})
}
