package statewire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

var update = flag.Bool("update", false, "rewrite the golden state encoding")

// goldenState is a fixed full-featured state. Its encoding is checked in:
// any codec change that breaks decoding of previously persisted snapshots
// or in-flight peer payloads fails this test instead of failing a replica.
func goldenState() *solve.State {
	return solve.New(site.Values{1, 0.75, 0.5, 0.25}, 5, policy.TwoPoint{C2: 0.25}).
		WithEq(strategy.Strategy{0.4, 0.3, 0.2, 0.1}, 0.15625, true).
		WithOpt(strategy.Strategy{0.35, 0.3, 0.25, 0.1}, 0.625, false).
		WithSigma(3, 1.75, 0.2)
}

func TestGoldenEncodingIsStable(t *testing.T) {
	path := filepath.Join("testdata", "state_v1.golden")
	enc, err := Encode(goldenState())
	if err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	// Today's encoder must reproduce the checked-in bytes...
	if !bytes.Equal(enc, golden) {
		t.Fatalf("encoding drifted from the golden bytes:\n got  %x\n want %x\n"+
			"(a deliberate layout change must mint a new magic, keep decoding %q, and regenerate with -update)",
			enc, golden, Magic)
	}
	// ...and today's decoder must accept bytes written by any past version.
	dec, err := Decode(golden)
	if err != nil {
		t.Fatalf("golden snapshot no longer decodes: %v", err)
	}
	statesEqual(t, goldenState(), dec)
}
