// Package statewire is the cross-process wire codec of the solver-core
// state (internal/solve.State): a compact, versioned binary encoding of the
// equilibrium, coverage-optimum and exclusive sigma* parts, the landscape
// they were solved on, and the warm-telemetry flags.
//
// The in-memory solve.State deliberately never leaves one process; this
// codec is what lets it — a dispersald replica answering a peer's
// /v1/warmstate query, or a snapshot file (internal/statestore) seeding a
// restarted replica, both move states through here. The contract mirrors
// the state's own: a decoded state is only ever a warm *seed*, verified by
// every consumer against its actual landscape, so a corrupted-but-decodable
// payload can waste a warm attempt but never change a result. Decode is
// nevertheless strict — wrong magic, unknown versions, truncated bodies,
// non-finite floats, out-of-range masses, oversized dimensions and trailing
// bytes are all rejected with ErrDecode — because rejecting garbage at the
// boundary is cheaper than carrying it to a solver.
//
// Wire layout (version 1, little-endian, varint = binary.Uvarint):
//
//	magic     "DWS1" (4 bytes; the version is part of the magic)
//	flags     1 byte: bit0 hasEq, bit1 eqWarm, bit2 hasOpt, bit3 optWarm,
//	          bit4 hasSigma (remaining bits must be zero)
//	m         varint, number of sites (1..MaxSites)
//	k         varint, player count (1..MaxPlayers)
//	polLen    varint, then polLen bytes: the policy display name
//	f         m * float64 (IEEE 754 bits), the landscape
//	[hasEq]   m * float64 equilibrium strategy, then float64 nu
//	[hasOpt]  m * float64 optimum strategy, then float64 lambda
//	[hasSigma] varint W (0..m), float64 alpha, float64 nu
//
// Nothing may follow the last part.
package statewire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

// Errors returned by this package. Every Decode failure wraps ErrDecode;
// Encode fails only on a nil or dimensionless state (ErrEncode).
var (
	ErrDecode = errors.New("statewire: invalid state encoding")
	ErrEncode = errors.New("statewire: state not encodable")
)

// Magic identifies a version-1 encoding. The version lives in the magic:
// incompatible layout changes mint "DWS2" rather than reinterpreting bytes.
const Magic = "DWS1"

// Size bounds enforced by Decode, mirroring the spec codec's request-side
// bounds (speccodec.MaxSites / MaxPlayers — asserted equal in the tests):
// a state describes a game the server would have accepted.
const (
	// MaxSites bounds the site count m.
	MaxSites = 65536
	// MaxPlayers bounds the player count k.
	MaxPlayers = 1 << 20
	// MaxPolicyName bounds the policy display name; real names are tens of
	// bytes ("twopoint(c2=0.25)"), the bound just stops a hostile length
	// prefix from forcing a huge allocation.
	MaxPolicyName = 256
)

// maxEncodedSize is a decode-side ceiling on plausible payload size:
// landscape plus two strategies plus fixed parts. Used by consumers
// (peer client, statestore) to bound reads; Decode itself works from the
// slice it is given.
const maxEncodedSize = 8 + MaxPolicyName + 3*8*MaxSites + 8*8

// MaxEncodedSize returns the largest byte length a valid version-1
// encoding can have; readers of untrusted streams should refuse anything
// longer before buffering it.
func MaxEncodedSize() int { return maxEncodedSize }

// flag bits of the header byte.
const (
	flagHasEq   = 1 << 0
	flagEqWarm  = 1 << 1
	flagHasOpt  = 1 << 2
	flagOptWarm = 1 << 3
	flagHasSig  = 1 << 4
	flagKnown   = flagHasEq | flagEqWarm | flagHasOpt | flagOptWarm | flagHasSig
)

// strategySumTol is the decode-side tolerance on a strategy's total mass.
// It is looser than strategy.SumTolerance: accumulated float formatting is
// not in play (bits travel exactly), but a state assembled by an older or
// foreign encoder should not be rejected over the last few ulps.
const strategySumTol = 1e-6

// Encode renders st in the version-1 wire form. It fails only when st is
// nil or has no landscape — every state a solver produces encodes.
func Encode(st *solve.State) ([]byte, error) {
	if st == nil || len(st.Landscape()) == 0 {
		return nil, fmt.Errorf("%w: nil or empty state", ErrEncode)
	}
	f := st.Landscape()
	m := len(f)
	pol := st.PolicyName()
	if len(pol) > MaxPolicyName {
		return nil, fmt.Errorf("%w: policy name of %d bytes exceeds %d", ErrEncode, len(pol), MaxPolicyName)
	}
	if m > MaxSites {
		return nil, fmt.Errorf("%w: %d sites exceed %d", ErrEncode, m, MaxSites)
	}
	if st.Players() > MaxPlayers {
		return nil, fmt.Errorf("%w: %d players exceed %d", ErrEncode, st.Players(), MaxPlayers)
	}

	var flags byte
	if st.HasEq() {
		flags |= flagHasEq
		if st.Warmed() {
			flags |= flagEqWarm
		}
	}
	if st.HasOpt() {
		flags |= flagHasOpt
		if st.OptWarmed() {
			flags |= flagOptWarm
		}
	}
	if st.HasSigma() {
		flags |= flagHasSig
	}

	buf := make([]byte, 0, 64+8*m*3)
	buf = append(buf, Magic...)
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(m))
	buf = binary.AppendUvarint(buf, uint64(st.Players()))
	buf = binary.AppendUvarint(buf, uint64(len(pol)))
	buf = append(buf, pol...)
	buf = appendFloats(buf, f)
	if st.HasEq() {
		buf = appendFloats(buf, st.EqRef())
		buf = appendFloat(buf, st.Nu())
	}
	if st.HasOpt() {
		buf = appendFloats(buf, st.OptRef())
		buf = appendFloat(buf, st.Lambda())
	}
	if st.HasSigma() {
		w, alpha, nu := st.Sigma()
		buf = binary.AppendUvarint(buf, uint64(w))
		buf = appendFloat(buf, alpha)
		buf = appendFloat(buf, nu)
	}
	return buf, nil
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func appendFloats[S ~[]float64](buf []byte, vs S) []byte {
	for _, v := range vs {
		buf = appendFloat(buf, v)
	}
	return buf
}

// reader walks the payload with bounds checking; every failure is sticky.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrDecode}, args...)...)
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("truncated at byte %d (want %d more)", r.off, n)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) uvarint(what string, max uint64) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad varint for %s at byte %d", what, r.off)
		return 0
	}
	// Insist on the minimal varint spelling, so every state has exactly one
	// encoding (the fuzz target proves decode∘encode is the identity).
	if n != len(binary.AppendUvarint(nil, v)) {
		r.fail("non-canonical varint for %s at byte %d", what, r.off)
		return 0
	}
	r.off += n
	if v > max {
		r.fail("%s = %d exceeds %d", what, v, max)
		return 0
	}
	return v
}

func (r *reader) float(what string) float64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(b))
	if math.IsNaN(v) || math.IsInf(v, 0) {
		r.fail("%s = %v is not finite", what, v)
		return 0
	}
	return v
}

func (r *reader) floats(what string, n int) []float64 {
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.float(what)
		if r.err != nil {
			return nil
		}
	}
	return out
}

// decodeStrategy reads and validates one m-site strategy: finite (via
// float), non-negative, total mass within strategySumTol of 1.
func (r *reader) decodeStrategy(what string, m int) strategy.Strategy {
	vs := r.floats(what, m)
	if r.err != nil {
		return nil
	}
	sum := 0.0
	for i, v := range vs {
		if v < 0 {
			r.fail("%s(%d) = %v is negative", what, i+1, v)
			return nil
		}
		sum += v
	}
	if math.Abs(sum-1) > strategySumTol {
		r.fail("%s mass %v is not 1", what, sum)
		return nil
	}
	return strategy.Strategy(vs)
}

// Decode parses one version-1 state encoding. Every structural or semantic
// violation — wrong magic, unknown flag bits, truncation, trailing bytes,
// non-finite floats, invalid landscape, off-simplex strategies, a sigma
// boundary outside [0, m] — fails with an error wrapping ErrDecode; Decode
// never panics on any input.
func Decode(data []byte) (*solve.State, error) {
	r := &reader{data: data}
	if magic := r.bytes(len(Magic)); r.err != nil || string(magic) != Magic {
		if r.err == nil {
			r.fail("bad magic %q", magic)
		}
		return nil, r.err
	}
	flagb := r.bytes(1)
	if r.err != nil {
		return nil, r.err
	}
	flags := flagb[0]
	if flags&^flagKnown != 0 {
		return nil, fmt.Errorf("%w: unknown flag bits %#02x", ErrDecode, flags&^flagKnown)
	}
	// A warm bit without its part is an encoder bug, not an optional.
	if flags&flagEqWarm != 0 && flags&flagHasEq == 0 {
		return nil, fmt.Errorf("%w: eq-warm flag without an equilibrium part", ErrDecode)
	}
	if flags&flagOptWarm != 0 && flags&flagHasOpt == 0 {
		return nil, fmt.Errorf("%w: opt-warm flag without an optimum part", ErrDecode)
	}

	m := int(r.uvarint("site count", MaxSites))
	if r.err == nil && m < 1 {
		r.fail("site count %d < 1", m)
	}
	k := int(r.uvarint("player count", MaxPlayers))
	if r.err == nil && k < 1 {
		r.fail("player count %d < 1", k)
	}
	polLen := int(r.uvarint("policy name length", MaxPolicyName))
	pol := string(r.bytes(polLen))
	f := site.Values(r.floats("f", m))
	if r.err != nil {
		return nil, r.err
	}
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecode, err)
	}

	st := solve.NewNamed(f, k, pol)
	if flags&flagHasEq != 0 {
		eq := r.decodeStrategy("eq", m)
		nu := r.float("nu")
		if r.err != nil {
			return nil, r.err
		}
		st = st.WithEq(eq, nu, flags&flagEqWarm != 0)
	}
	if flags&flagHasOpt != 0 {
		opt := r.decodeStrategy("opt", m)
		lambda := r.float("lambda")
		if r.err != nil {
			return nil, r.err
		}
		st = st.WithOpt(opt, lambda, flags&flagOptWarm != 0)
	}
	if flags&flagHasSig != 0 {
		w := int(r.uvarint("sigma boundary", uint64(m)))
		alpha := r.float("alpha")
		nu := r.float("sigma nu")
		if r.err != nil {
			return nil, r.err
		}
		st = st.WithSigma(w, alpha, nu)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(data)-r.off)
	}
	return st, nil
}
