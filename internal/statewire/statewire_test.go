package statewire

import (
	"context"
	"math"
	"strings"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/speccodec"
	"dispersal/internal/spoa"
	"dispersal/internal/strategy"
)

// allPolicies is the full policy family of the paper's experiments — the
// same eight the spec codec speaks.
func allPolicies() []policy.Congestion {
	table, err := policy.NewTable([]float64{1, 0.5, 0.25}, 0.1)
	if err != nil {
		panic(err)
	}
	return []policy.Congestion{
		policy.Exclusive{},
		policy.Sharing{},
		policy.Constant{},
		policy.TwoPoint{C2: 0.25},
		policy.PowerLaw{Beta: 2},
		policy.Cooperative{Gamma: 0.9},
		policy.Aggressive{Penalty: 0.5},
		table,
	}
}

// statesEqual compares every observable field of two states, exactly: the
// codec moves float bits unchanged, so a lossless round trip is exact.
func statesEqual(t *testing.T, a, b *solve.State) {
	t.Helper()
	if got, want := b.Landscape(), a.Landscape(); !equalFloats(got, want) {
		t.Fatalf("landscape: got %v, want %v", got, want)
	}
	if a.Players() != b.Players() {
		t.Fatalf("players: got %d, want %d", b.Players(), a.Players())
	}
	if a.PolicyName() != b.PolicyName() {
		t.Fatalf("policy: got %q, want %q", b.PolicyName(), a.PolicyName())
	}
	if a.HasEq() != b.HasEq() || a.Warmed() != b.Warmed() {
		t.Fatalf("eq part: got (%v,%v), want (%v,%v)", b.HasEq(), b.Warmed(), a.HasEq(), a.Warmed())
	}
	if a.HasEq() {
		if !equalFloats(a.EqRef(), b.EqRef()) || a.Nu() != b.Nu() {
			t.Fatalf("eq: got (%v, %v), want (%v, %v)", b.EqRef(), b.Nu(), a.EqRef(), a.Nu())
		}
	}
	if a.HasOpt() != b.HasOpt() || a.OptWarmed() != b.OptWarmed() {
		t.Fatalf("opt part: got (%v,%v), want (%v,%v)", b.HasOpt(), b.OptWarmed(), a.HasOpt(), a.OptWarmed())
	}
	if a.HasOpt() {
		if !equalFloats(a.OptRef(), b.OptRef()) || a.Lambda() != b.Lambda() {
			t.Fatalf("opt: got (%v, %v), want (%v, %v)", b.OptRef(), b.Lambda(), a.OptRef(), a.Lambda())
		}
	}
	if a.HasSigma() != b.HasSigma() {
		t.Fatalf("sigma part: got %v, want %v", b.HasSigma(), a.HasSigma())
	}
	if a.HasSigma() {
		aw, aa, an := a.Sigma()
		bw, ba, bn := b.Sigma()
		if aw != bw || aa != ba || an != bn {
			t.Fatalf("sigma: got (%d,%v,%v), want (%d,%v,%v)", bw, ba, bn, aw, aa, an)
		}
	}
}

func equalFloats[S ~[]float64](a, b S) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestRoundTripAllPolicies solves a real game under each of the eight
// policies, accumulates every state part a solver can produce (equilibrium
// and optimum via the SPoA pipeline, sigma* via the exclusive closed form),
// and asserts the wire round trip is lossless.
func TestRoundTripAllPolicies(t *testing.T) {
	f := site.Values(site.Geometric(12, 1, 0.85))
	const k = 6
	for _, c := range allPolicies() {
		t.Run(c.Name(), func(t *testing.T) {
			_, st, err := spoa.ComputeWarm(context.Background(), nil, f, k, c)
			if err != nil {
				t.Fatal(err)
			}
			_, res, _, err := ifd.ExclusiveWarm(nil, f, k)
			if err != nil {
				t.Fatal(err)
			}
			st = solve.Merge(st, solve.New(f, k, c).WithSigma(res.W, res.Alpha, res.Nu))
			enc, err := Encode(st)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatal(err)
			}
			statesEqual(t, st, dec)
			// A decoded state must still pass the warm compatibility gates
			// its producers passed.
			if st.HasEq() && !dec.CompatibleEq(f, k, c) {
				t.Fatal("decoded state lost equilibrium compatibility")
			}
			if st.HasOpt() && !dec.CompatibleOpt(f, k) {
				t.Fatal("decoded state lost optimum compatibility")
			}
		})
	}
}

// TestRoundTripPartCombinations covers states carrying every subset of
// parts, including warm flags.
func TestRoundTripPartCombinations(t *testing.T) {
	f := site.Values{1, 0.6, 0.3}
	eq := strategy.Strategy{0.5, 0.3, 0.2}
	opt := strategy.Strategy{0.45, 0.35, 0.2}
	base := solve.New(f, 4, policy.Sharing{})
	states := []*solve.State{
		base,
		base.WithEq(eq, 0.21, false),
		base.WithEq(eq, 0.21, true),
		base.WithOpt(opt, 0.8, true),
		base.WithSigma(2, 1.9, 0.33),
		base.WithEq(eq, 0.21, true).WithOpt(opt, 0.8, false).WithSigma(3, 2.2, 0.4),
	}
	for _, st := range states {
		enc, err := Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		statesEqual(t, st, dec)
	}
}

func validEncoding(t *testing.T) []byte {
	t.Helper()
	st := solve.New(site.Values{1, 0.5, 0.25}, 3, policy.Sharing{}).
		WithEq(strategy.Strategy{0.6, 0.3, 0.1}, 0.2, true).
		WithOpt(strategy.Strategy{0.5, 0.3, 0.2}, 0.7, false).
		WithSigma(2, 1.5, 0.3)
	enc, err := Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestDecodeRejectsTruncation: every proper prefix of a valid encoding must
// be rejected, never panic, never decode.
func TestDecodeRejectsTruncation(t *testing.T) {
	enc := validEncoding(t)
	for i := 0; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded", i, len(enc))
		}
	}
}

// TestDecodeRejectsCorruption exercises the targeted validation paths.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := validEncoding(t)
	corrupt := func(mut func(b []byte) []byte) error {
		b := append([]byte(nil), enc...)
		_, err := Decode(mut(b))
		return err
	}
	cases := map[string]func(b []byte) []byte{
		"bad magic":      func(b []byte) []byte { b[0] = 'X'; return b },
		"future version": func(b []byte) []byte { b[3] = '2'; return b },
		"unknown flags":  func(b []byte) []byte { b[4] |= 0x80; return b },
		"trailing bytes": func(b []byte) []byte { return append(b, 0) },
		"empty":          func([]byte) []byte { return nil },
	}
	for name, mut := range cases {
		if err := corrupt(mut); err == nil {
			t.Fatalf("%s decoded", name)
		}
	}

	// Semantic corruptions, rebuilt rather than byte-flipped so each hits
	// exactly one rule.
	badStrategy := solve.New(site.Values{1, 0.5}, 2, policy.Sharing{}).
		WithEq(strategy.Strategy{0.9, 0.2}, 0.2, false) // mass 1.1
	if enc, err := Encode(badStrategy); err == nil {
		if _, err := Decode(enc); err == nil {
			t.Fatal("off-simplex equilibrium decoded")
		}
	}
	unsorted := solve.NewNamed(site.Values{0.5, 1}, 2, "sharing")
	if enc, err := Encode(unsorted); err == nil {
		if _, err := Decode(enc); err == nil {
			t.Fatal("non-monotone landscape decoded")
		}
	}
	nan := solve.NewNamed(site.Values{1, math.NaN()}, 2, "sharing")
	if enc, err := Encode(nan); err == nil {
		if _, err := Decode(enc); err == nil {
			t.Fatal("NaN landscape decoded")
		}
	}
	wBeyondM := solve.New(site.Values{1, 0.5}, 2, policy.Sharing{}).WithSigma(7, 1, 0.1)
	if enc, err := Encode(wBeyondM); err == nil {
		if _, err := Decode(enc); err == nil {
			t.Fatal("sigma boundary beyond site count decoded")
		}
	}
}

func TestEncodeRejectsNil(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil state encoded")
	}
}

// TestBoundsMatchSpecCodec pins the decode-side limits to the request-side
// limits: a state the wire accepts always describes a game the server
// would accept.
func TestBoundsMatchSpecCodec(t *testing.T) {
	if MaxSites != speccodec.MaxSites {
		t.Fatalf("MaxSites = %d, speccodec.MaxSites = %d", MaxSites, speccodec.MaxSites)
	}
	if MaxPlayers != speccodec.MaxPlayers {
		t.Fatalf("MaxPlayers = %d, speccodec.MaxPlayers = %d", MaxPlayers, speccodec.MaxPlayers)
	}
}

// TestPolicyNameRoundTripsVerbatim: parameterized display names (the warm
// compatibility identity) must survive the trip byte for byte.
func TestPolicyNameRoundTripsVerbatim(t *testing.T) {
	for _, c := range allPolicies() {
		st := solve.New(site.Values{1, 0.5}, 2, c)
		enc, err := Encode(st)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatal(err)
		}
		if dec.PolicyName() != c.Name() {
			t.Fatalf("policy name: got %q, want %q", dec.PolicyName(), c.Name())
		}
	}
	long := strings.Repeat("p", MaxPolicyName+1)
	if _, err := Encode(solve.NewNamed(site.Values{1}, 1, long)); err == nil {
		t.Fatal("oversized policy name encoded")
	}
}
