// Package stats provides the lightweight statistics used by the Monte-Carlo
// engine and the experiment harness: streaming Welford accumulators (with
// parallel merge), normal-approximation confidence intervals, quantiles, and
// fixed-width histograms.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Welford accumulates count, mean, and variance in one pass using Welford's
// algorithm. The zero value is ready to use. It is not safe for concurrent
// mutation; shard per goroutine and Merge.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge combines another accumulator into this one (Chan et al. parallel
// variant), enabling lock-free per-worker accumulation.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	d := o.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.n += o.n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for an empty sample).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 when n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval on the mean.
func (w *Welford) CI95() float64 { return 1.959963984540054 * w.StdErr() }

// Summary is a snapshot of a Welford accumulator.
type Summary struct {
	N      int64
	Mean   float64
	StdDev float64
	CI95   float64
}

// Summarize snapshots the accumulator.
func (w *Welford) Summarize() Summary {
	return Summary{N: w.n, Mean: w.Mean(), StdDev: w.StdDev(), CI95: w.CI95()}
}

// Quantile returns the q-th sample quantile (q in [0,1]) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q <= 0 {
		q = 0
	}
	if q >= 1 {
		q = 1
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Histogram is a fixed-width histogram over [Lo, Hi); observations outside
// the range are clamped to the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	total  int64
}

// NewHistogram builds a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	b := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 { return h.total }

// Fraction returns the fraction of observations in bin b.
func (h *Histogram) Fraction(b int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[b]) / float64(h.total)
}

// Merge adds another histogram's counts into this one. The histograms must
// have identical geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if len(h.Counts) != len(o.Counts) || h.Lo != o.Lo || h.Hi != o.Hi {
		return errors.New("stats: histogram geometry mismatch")
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
	return nil
}
