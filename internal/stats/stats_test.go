package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestWelfordKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Errorf("Mean = %v", w.Mean())
	}
	// Population m2 = 32; unbiased variance = 32/7.
	if got, want := w.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Errorf("single obs: mean %v var %v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	var seq Welford
	for _, x := range xs {
		seq.Add(x)
	}
	// Shard into 7 parts and merge.
	var merged Welford
	for i := 0; i < 7; i++ {
		var part Welford
		for j := i; j < len(xs); j += 7 {
			part.Add(xs[j])
		}
		merged.Merge(part)
	}
	if merged.N() != seq.N() {
		t.Fatalf("N %d vs %d", merged.N(), seq.N())
	}
	if math.Abs(merged.Mean()-seq.Mean()) > 1e-10 {
		t.Errorf("mean %v vs %v", merged.Mean(), seq.Mean())
	}
	if math.Abs(merged.Variance()-seq.Variance()) > 1e-8 {
		t.Errorf("var %v vs %v", merged.Variance(), seq.Variance())
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	b.Add(5)
	a.Merge(b) // into empty
	if a.N() != 1 || a.Mean() != 5 {
		t.Errorf("merge into empty: %+v", a)
	}
	var c Welford
	a.Merge(c) // empty into non-empty
	if a.N() != 1 {
		t.Errorf("merge of empty changed state: %+v", a)
	}
}

func TestWelfordMergeQuick(t *testing.T) {
	f := func(raw []float64, cut uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		c := int(cut) % len(xs)
		var all, a, b Welford
		for _, x := range xs {
			all.Add(x)
		}
		for _, x := range xs[:c] {
			a.Add(x)
		}
		for _, x := range xs[c:] {
			b.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-6*(1+math.Abs(all.Mean())) &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCI95CoversTrueMean(t *testing.T) {
	// 100 experiments of 1000 N(0,1) samples: the 95% CI should cover 0
	// most of the time (allow down to 85 to keep the test robust).
	rng := rand.New(rand.NewPCG(9, 9))
	covered := 0
	for e := 0; e < 100; e++ {
		var w Welford
		for i := 0; i < 1000; i++ {
			w.Add(rng.NormFloat64())
		}
		if math.Abs(w.Mean()) <= w.CI95() {
			covered++
		}
	}
	if covered < 85 {
		t.Errorf("CI covered the mean only %d/100 times", covered)
	}
}

func TestSummarize(t *testing.T) {
	var w Welford
	w.Add(1)
	w.Add(3)
	s := w.Summarize()
	if s.N != 2 || s.Mean != 2 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt2) > 1e-12 {
		t.Errorf("stddev %v", s.StdDev)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Out-of-range q clamps.
	if got, _ := Quantile(xs, -1); got != 1 {
		t.Errorf("q<0: %v", got)
	}
	if got, _ := Quantile(xs, 2); got != 4 {
		t.Errorf("q>1: %v", got)
	}
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	// Input not mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted the input in place")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 9.99, -5, 15} {
		h.Add(x)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	// -5 clamps into bin 0, 15 into bin 4.
	if h.Counts[0] != 3 { // 0, 1, -5
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[4] != 2 { // 9.99, 15
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	if got := h.Fraction(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 1, 4)
	a.Add(0.1)
	b.Add(0.9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.Counts[3] != 1 {
		t.Errorf("merged: %+v", a)
	}
	c := NewHistogram(0, 2, 4)
	if err := a.Merge(c); err == nil {
		t.Error("geometry mismatch accepted")
	}
}

func TestHistogramDegenerateConstruction(t *testing.T) {
	h := NewHistogram(5, 5, 0) // hi <= lo and zero bins
	h.Add(5)
	if h.Total() != 1 || len(h.Counts) != 1 {
		t.Errorf("degenerate histogram: %+v", h)
	}
	if h.Fraction(0) != 1 {
		t.Errorf("Fraction = %v", h.Fraction(0))
	}
	empty := NewHistogram(0, 1, 2)
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram fraction should be 0")
	}
}
