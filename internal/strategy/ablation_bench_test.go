package strategy

// Ablation: the O(1) alias-method sampler vs the O(M) linear CDF scan it
// replaces. The Monte-Carlo engine draws k sites per round, so this choice
// dominates its hot path at large M.

import (
	"math/rand/v2"
	"testing"
)

// cdfSample is the naive baseline: walk the distribution accumulating mass.
func cdfSample(rng *rand.Rand, p Strategy) int {
	r := rng.Float64()
	acc := 0.0
	for i, v := range p {
		acc += v
		if r <= acc {
			return i
		}
	}
	return len(p) - 1
}

func benchDistribution(m int) Strategy {
	w := make([]float64, m)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range w {
		w[i] = rng.ExpFloat64() + 1e-9
	}
	p, err := FromWeights(w)
	if err != nil {
		panic(err)
	}
	return p
}

func BenchmarkSampleAlias(b *testing.B) {
	for _, m := range []int{10, 100, 1000, 10000} {
		p := benchDistribution(m)
		s, err := NewSampler(p)
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(1, 1))
		b.Run(sizeName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Sample(rng)
			}
		})
	}
}

func BenchmarkSampleLinearCDF(b *testing.B) {
	for _, m := range []int{10, 100, 1000, 10000} {
		p := benchDistribution(m)
		rng := rand.New(rand.NewPCG(1, 1))
		b.Run(sizeName(m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = cdfSample(rng, p)
			}
		})
	}
}

func sizeName(m int) string {
	switch m {
	case 10:
		return "M=10"
	case 100:
		return "M=100"
	case 1000:
		return "M=1000"
	default:
		return "M=10000"
	}
}

// TestCDFSampleAgreesWithAlias keeps the baseline honest: both samplers
// target the same distribution.
func TestCDFSampleAgreesWithAlias(t *testing.T) {
	p := Strategy{0.5, 0.3, 0.2}
	rng := rand.New(rand.NewPCG(4, 4))
	counts := make([]int, 3)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[cdfSample(rng, p)]++
	}
	for i := range p {
		got := float64(counts[i]) / n
		if got < p[i]-0.01 || got > p[i]+0.01 {
			t.Errorf("site %d: freq %v, want %v", i, got, p[i])
		}
	}
}
