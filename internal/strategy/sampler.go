package strategy

import (
	"math/rand/v2"

	"dispersal/internal/numeric"
)

// Sampler draws sites from a fixed Strategy in O(1) per draw using Walker's
// alias method. Construction is O(M). A Sampler is immutable after
// construction and safe for concurrent use by multiple goroutines, each with
// its own *rand.Rand.
type Sampler struct {
	prob  []float64
	alias []int
}

// NewSampler builds an alias table for p. It returns an error if p is not a
// valid distribution.
func NewSampler(p Strategy) (*Sampler, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p)
	s := &Sampler{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scale probabilities by n and split into small/large worklists.
	scaled := make([]float64, n)
	total := numeric.KahanSum(p)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, v := range p {
		scaled[i] = v / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = (scaled[g] + scaled[l]) - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	// Whatever remains has weight 1 up to rounding.
	for _, g := range large {
		s.prob[g] = 1
	}
	for _, l := range small {
		s.prob[l] = 1
	}
	return s, nil
}

// Sample draws one site index (0-based).
func (s *Sampler) Sample(rng *rand.Rand) int {
	i := rng.IntN(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// SampleMany draws n site indices into a fresh slice.
func (s *Sampler) SampleMany(rng *rand.Rand, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// M returns the number of sites the sampler draws from.
func (s *Sampler) M() int { return len(s.prob) }
