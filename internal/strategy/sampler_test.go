package strategy

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNewSamplerRejectsInvalid(t *testing.T) {
	if _, err := NewSampler(Strategy{0.5, 0.6}); err == nil {
		t.Error("invalid distribution accepted")
	}
	if _, err := NewSampler(nil); err == nil {
		t.Error("nil distribution accepted")
	}
}

func TestSamplerPointMass(t *testing.T) {
	s, err := NewSampler(Delta(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < 1000; i++ {
		if got := s.Sample(rng); got != 3 {
			t.Fatalf("point mass sampled %d", got)
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	p := Strategy{0.5, 0.3, 0.15, 0.05}
	s, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 11))
	const n = 2_000_000
	counts := make([]int, len(p))
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	for i, c := range counts {
		got := float64(c) / n
		// Standard error is sqrt(p(1-p)/n) < 4e-4; allow 5 sigma.
		se := math.Sqrt(p[i] * (1 - p[i]) / n)
		if math.Abs(got-p[i]) > 5*se+1e-9 {
			t.Errorf("site %d: freq %v, want %v (se %v)", i, got, p[i], se)
		}
	}
}

func TestSamplerUniformChiSquare(t *testing.T) {
	const m = 16
	s, err := NewSampler(Uniform(m))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 5))
	const n = 160_000
	counts := make([]int, m)
	for i := 0; i < n; i++ {
		counts[s.Sample(rng)]++
	}
	expected := float64(n) / m
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; P[chi2 > 37.7] ~ 0.001.
	if chi2 > 37.7 {
		t.Errorf("chi-square = %v, suspiciously non-uniform", chi2)
	}
}

func TestSamplerZeroMassSites(t *testing.T) {
	p := Strategy{0.5, 0, 0.5, 0}
	s, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 10_000; i++ {
		got := s.Sample(rng)
		if got == 1 || got == 3 {
			t.Fatalf("sampled zero-probability site %d", got)
		}
	}
}

func TestSampleMany(t *testing.T) {
	s, err := NewSampler(Uniform(3))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 4))
	xs := s.SampleMany(rng, 100)
	if len(xs) != 100 {
		t.Fatalf("len = %d", len(xs))
	}
	for _, x := range xs {
		if x < 0 || x >= 3 {
			t.Fatalf("out of range sample %d", x)
		}
	}
	if s.M() != 3 {
		t.Errorf("M = %d", s.M())
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	p := Strategy{0.2, 0.8}
	s, _ := NewSampler(p)
	a := s.SampleMany(rand.New(rand.NewPCG(1, 2)), 50)
	b := s.SampleMany(rand.New(rand.NewPCG(1, 2)), 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func BenchmarkSamplerSample(b *testing.B) {
	s, err := NewSampler(Uniform(1000))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Sample(rng)
	}
}

func BenchmarkNewSampler(b *testing.B) {
	p := Uniform(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSampler(p); err != nil {
			b.Fatal(err)
		}
	}
}
