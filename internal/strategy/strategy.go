// Package strategy defines mixed strategies over sites — probability
// distributions p with p(x) the chance a player explores site x — together
// with constructors, distance metrics, and an O(1) alias-method sampler used
// by the Monte-Carlo game engine.
package strategy

import (
	"errors"
	"fmt"
	"math"

	"dispersal/internal/numeric"
)

// Strategy is a probability distribution over M sites, 0-indexed.
type Strategy []float64

// SumTolerance is the acceptable deviation of a strategy's total mass from 1.
const SumTolerance = 1e-9

// Validation errors.
var (
	ErrEmpty    = errors.New("strategy: empty distribution")
	ErrNegative = errors.New("strategy: negative probability")
	ErrNotOne   = errors.New("strategy: probabilities do not sum to 1")
	ErrNaN      = errors.New("strategy: non-finite probability")
	ErrZeroMass = errors.New("strategy: all-zero weight vector")
	ErrLength   = errors.New("strategy: length mismatch")
)

// Validate checks that p is a probability distribution.
func (p Strategy) Validate() error {
	if len(p) == 0 {
		return ErrEmpty
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: p(%d) = %v", ErrNaN, i+1, v)
		}
		if v < 0 {
			return fmt.Errorf("%w: p(%d) = %v", ErrNegative, i+1, v)
		}
	}
	if s := numeric.KahanSum(p); math.Abs(s-1) > SumTolerance {
		return fmt.Errorf("%w: sum = %v", ErrNotOne, s)
	}
	return nil
}

// M returns the number of sites.
func (p Strategy) M() int { return len(p) }

// Clone returns an independent copy.
func (p Strategy) Clone() Strategy {
	out := make(Strategy, len(p))
	copy(out, p)
	return out
}

// Support returns the indices explored with probability above tol.
func (p Strategy) Support(tol float64) []int {
	var out []int
	for i, v := range p {
		if v > tol {
			out = append(out, i)
		}
	}
	return out
}

// SupportSize returns the number of sites explored with probability > tol.
func (p Strategy) SupportSize(tol float64) int {
	n := 0
	for _, v := range p {
		if v > tol {
			n++
		}
	}
	return n
}

// IsPrefixSupport reports whether the support of p is exactly {1, ..., W}
// (1-based), the structure of every IFD of a congestion policy.
func (p Strategy) IsPrefixSupport(tol float64) (w int, ok bool) {
	seenZero := false
	for _, v := range p {
		if v > tol {
			if seenZero {
				return 0, false
			}
			w++
		} else {
			seenZero = true
		}
	}
	return w, w > 0
}

// Entropy returns the Shannon entropy of p in nats.
func (p Strategy) Entropy() float64 {
	var acc numeric.Accumulator
	for _, v := range p {
		if v > 0 {
			acc.Add(-v * math.Log(v))
		}
	}
	return acc.Sum()
}

// TV returns the total-variation distance between p and q, which must have
// equal length: TV = (1/2) * sum |p - q|.
func (p Strategy) TV(q Strategy) float64 {
	var acc numeric.Accumulator
	for i := range p {
		acc.Add(math.Abs(p[i] - q[i]))
	}
	return acc.Sum() / 2
}

// L2 returns the Euclidean distance between p and q.
func (p Strategy) L2(q Strategy) float64 {
	var acc numeric.Accumulator
	for i := range p {
		d := p[i] - q[i]
		acc.Add(d * d)
	}
	return math.Sqrt(acc.Sum())
}

// LInf returns the maximum elementwise difference between p and q.
func (p Strategy) LInf(q Strategy) float64 {
	var m float64
	for i := range p {
		if d := math.Abs(p[i] - q[i]); d > m {
			m = d
		}
	}
	return m
}

// Normalize rescales p in place so its entries sum to 1 and returns p. It
// returns an error if the total mass is zero or not finite.
func (p Strategy) Normalize() (Strategy, error) {
	s := numeric.KahanSum(p)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, ErrZeroMass
	}
	for i := range p {
		p[i] /= s
	}
	return p, nil
}

// Uniform returns the uniform distribution over m sites.
func Uniform(m int) Strategy {
	p := make(Strategy, m)
	for i := range p {
		p[i] = 1 / float64(m)
	}
	return p
}

// UniformFirst returns the distribution uniform over the first n of m sites
// (the strategy p-hat of Observation 1 with n = k).
func UniformFirst(m, n int) Strategy {
	if n > m {
		n = m
	}
	p := make(Strategy, m)
	for i := 0; i < n; i++ {
		p[i] = 1 / float64(n)
	}
	return p
}

// Delta returns the point mass on site x (0-based) among m sites — the
// "greedy" strategy of always exploring the best site when x = 0.
func Delta(m, x int) Strategy {
	p := make(Strategy, m)
	p[x] = 1
	return p
}

// FromWeights normalizes a non-negative weight vector into a Strategy.
func FromWeights(w []float64) (Strategy, error) {
	if len(w) == 0 {
		return nil, ErrEmpty
	}
	p := make(Strategy, len(w))
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: w(%d) = %v", ErrNaN, i+1, v)
		}
		if v < 0 {
			return nil, fmt.Errorf("%w: w(%d) = %v", ErrNegative, i+1, v)
		}
		p[i] = v
	}
	return p.Normalize()
}

// Proportional returns the strategy proportional to the site values — the
// naive "match the resource distribution" heuristic (the classical
// input-matching rule of the IFD literature under sharing).
func Proportional(f []float64) (Strategy, error) {
	return FromWeights(f)
}

// Softmax returns the Gibbs distribution p(x) ∝ exp(scores[x]/temp).
// temp -> 0 approaches the greedy point mass; temp -> inf the uniform.
func Softmax(scores []float64, temp float64) (Strategy, error) {
	if len(scores) == 0 {
		return nil, ErrEmpty
	}
	if temp <= 0 {
		return nil, fmt.Errorf("strategy: temperature must be positive, got %v", temp)
	}
	_, max := numeric.MaxIndex(scores)
	w := make([]float64, len(scores))
	for i, s := range scores {
		w[i] = math.Exp((s - max) / temp)
	}
	return FromWeights(w)
}

// Mix returns (1-eps)*p + eps*q, the post-invasion population mixture used
// in the ESS analysis. p and q must have equal length.
func Mix(p, q Strategy, eps float64) (Strategy, error) {
	if len(p) != len(q) {
		return nil, ErrLength
	}
	out := make(Strategy, len(p))
	for i := range p {
		out[i] = (1-eps)*p[i] + eps*q[i]
	}
	return out, nil
}
