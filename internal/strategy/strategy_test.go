package strategy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"dispersal/internal/numeric"
)

func TestValidate(t *testing.T) {
	good := []Strategy{
		{1},
		{0.5, 0.5},
		Uniform(7),
		UniformFirst(10, 3),
		Delta(5, 2),
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", p, err)
		}
	}
	bad := []struct {
		p    Strategy
		want error
	}{
		{Strategy{}, ErrEmpty},
		{Strategy{0.5, 0.6}, ErrNotOne},
		{Strategy{1.5, -0.5}, ErrNegative},
		{Strategy{math.NaN(), 1}, ErrNaN},
		{Strategy{0.2, 0.2}, ErrNotOne},
	}
	for _, c := range bad {
		if err := c.p.Validate(); !errors.Is(err, c.want) {
			t.Errorf("Validate(%v) = %v, want %v", c.p, err, c.want)
		}
	}
}

func TestSupport(t *testing.T) {
	p := Strategy{0.6, 0, 0.4}
	got := p.Support(1e-12)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Support = %v", got)
	}
	if p.SupportSize(1e-12) != 2 {
		t.Errorf("SupportSize = %d", p.SupportSize(1e-12))
	}
}

func TestIsPrefixSupport(t *testing.T) {
	cases := []struct {
		p    Strategy
		w    int
		ok   bool
		name string
	}{
		{Strategy{0.5, 0.5, 0}, 2, true, "prefix"},
		{Strategy{1}, 1, true, "single"},
		{Strategy{0.5, 0, 0.5}, 0, false, "gap"},
		{Strategy{0, 1}, 0, false, "leading zero"},
		{Uniform(4), 4, true, "full support"},
	}
	for _, c := range cases {
		w, ok := c.p.IsPrefixSupport(1e-12)
		if w != c.w || ok != c.ok {
			t.Errorf("%s: IsPrefixSupport(%v) = %d, %v; want %d, %v", c.name, c.p, w, ok, c.w, c.ok)
		}
	}
}

func TestEntropy(t *testing.T) {
	if got := Delta(5, 0).Entropy(); got != 0 {
		t.Errorf("entropy of point mass = %v", got)
	}
	if got, want := Uniform(8).Entropy(), math.Log(8); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("entropy of uniform = %v, want %v", got, want)
	}
}

func TestDistances(t *testing.T) {
	p := Strategy{1, 0}
	q := Strategy{0, 1}
	if got := p.TV(q); got != 1 {
		t.Errorf("TV = %v, want 1", got)
	}
	if got := p.L2(q); !numeric.AlmostEqual(got, math.Sqrt2, 1e-12) {
		t.Errorf("L2 = %v, want sqrt2", got)
	}
	if got := p.LInf(q); got != 1 {
		t.Errorf("LInf = %v, want 1", got)
	}
	if got := p.TV(p); got != 0 {
		t.Errorf("TV self = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	p := Strategy{2, 2}
	q, err := p.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 0.5 || q[1] != 0.5 {
		t.Errorf("Normalize = %v", q)
	}
	if _, err := (Strategy{0, 0}).Normalize(); !errors.Is(err, ErrZeroMass) {
		t.Errorf("zero mass: %v", err)
	}
}

func TestUniformFirstClamps(t *testing.T) {
	p := UniformFirst(3, 10)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[0] != 1.0/3 {
		t.Errorf("p = %v", p)
	}
}

func TestFromWeights(t *testing.T) {
	p, err := FromWeights([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.75 || p[1] != 0.25 {
		t.Errorf("FromWeights = %v", p)
	}
	if _, err := FromWeights(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
	if _, err := FromWeights([]float64{1, -2}); !errors.Is(err, ErrNegative) {
		t.Errorf("negative: %v", err)
	}
	if _, err := FromWeights([]float64{math.Inf(1)}); !errors.Is(err, ErrNaN) {
		t.Errorf("inf: %v", err)
	}
}

func TestProportionalMatchesValues(t *testing.T) {
	p, err := Proportional([]float64{1, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(p[0], 0.5, 1e-12) {
		t.Errorf("Proportional = %v", p)
	}
}

func TestSoftmax(t *testing.T) {
	p, err := Softmax([]float64{1, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range p {
		if !numeric.AlmostEqual(v, 1.0/3, 1e-12) {
			t.Errorf("softmax equal scores = %v", p)
			break
		}
	}
	// Low temperature concentrates on the max.
	p, err = Softmax([]float64{0, 10}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p[1] < 0.999 {
		t.Errorf("cold softmax = %v", p)
	}
	if _, err := Softmax([]float64{1}, 0); err == nil {
		t.Error("temp=0 accepted")
	}
	if _, err := Softmax(nil, 1); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
}

func TestSoftmaxLargeScoresStable(t *testing.T) {
	p, err := Softmax([]float64{1e9, 1e9 - 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("softmax overflowed: %v (%v)", p, err)
	}
}

func TestMix(t *testing.T) {
	p := Strategy{1, 0}
	q := Strategy{0, 1}
	m, err := Mix(p, q, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if m[0] != 0.75 || m[1] != 0.25 {
		t.Errorf("Mix = %v", m)
	}
	if _, err := Mix(p, Strategy{1}, 0.5); !errors.Is(err, ErrLength) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestCloneIndependent(t *testing.T) {
	p := Uniform(3)
	q := p.Clone()
	q[0] = 9
	if p[0] == 9 {
		t.Error("Clone aliases")
	}
}

func TestValidateQuickFromWeights(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			w[i] = math.Abs(math.Mod(v, 1000))
			if math.IsNaN(w[i]) {
				w[i] = 0
			}
			if w[i] > 0 {
				any = true
			}
		}
		p, err := FromWeights(w)
		if !any {
			return err != nil
		}
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
