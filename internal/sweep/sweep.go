// Package sweep is the batch-evaluation engine of the library: a bounded
// worker pool that maps a function over a slice of items, preserves input
// order in the output, and honours context cancellation promptly. It backs
// both the public dispersal.Sweep API and the parallel grids of
// internal/experiments, so every batch workload in the repository shares one
// cancellation and scheduling story.
//
// The pool never leaks goroutines: Map and Collect only return after every
// worker has exited, even when the context is cancelled mid-flight or an
// item fails.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count against the number of items:
// n <= 0 selects GOMAXPROCS, and the result never exceeds items (so a small
// batch does not spawn idle goroutines).
func Workers(n, items int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > items {
		n = items
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Map applies fn to every item of items across a pool of workers and returns
// the results in input order. The first error cancels the remaining work and
// is returned; a cancelled ctx likewise stops the pool early and surfaces
// ctx.Err(). On error the returned slice holds the results completed so far
// (zero values elsewhere). A panic out of fn is recovered and returned as
// the batch error rather than killing the process.
func Map[I, O any](ctx context.Context, items []I, workers int, fn func(ctx context.Context, index int, item I) (O, error)) ([]O, error) {
	out := make([]O, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers, len(items))

	// A derived context lets the first failure stop the other workers
	// without affecting the caller's ctx.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	idx := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// A panic out of fn becomes the batch error instead of killing
			// the process: the recover runs before wg.Done (LIFO), so
			// Map's wg.Wait can never deadlock on a poisoned item.
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("sweep: item function panicked: %v", r))
				}
			}()
			for i := range idx {
				o, err := fn(ctx, i, items[i])
				if err != nil {
					fail(err)
					return
				}
				out[i] = o
			}
		}()
	}

feed:
	for i := range items {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// Collect is Map for item-independent errors: fn's error is recorded per
// item instead of cancelling the batch, so a sweep of many games reports
// every failure rather than just the first. Only ctx cancellation aborts the
// pool early, in which case Collect returns ctx.Err() and the errs slice
// marks the never-started items with ctx.Err() as well.
func Collect[I, O any](ctx context.Context, items []I, workers int, fn func(ctx context.Context, index int, item I) (O, error)) ([]O, []error, error) {
	errs := make([]error, len(items))
	started := make([]bool, len(items))
	out, err := Map(ctx, items, workers, func(ctx context.Context, i int, item I) (O, error) {
		started[i] = true
		o, e := fn(ctx, i, item)
		errs[i] = e
		return o, nil // never cancel the batch on an item error
	})
	if err != nil {
		for i := range errs {
			if !started[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return out, errs, err
}
