package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), items, 7, func(_ context.Context, i, item int) (int, error) {
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), nil, 4, func(_ context.Context, i, item int) (int, error) {
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	items := make([]int, 1000)
	_, err := Map(context.Background(), items, 4, func(ctx context.Context, i, _ int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, fmt.Errorf("item %d: %w", i, boom)
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := calls.Load(); n == 1000 {
		t.Fatalf("error did not cancel the batch: all %d items ran", n)
	}
}

func TestMapContextCancellationStopsEarlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10_000)
	var ran atomic.Int64
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = Map(ctx, items, 4, func(ctx context.Context, i, _ int) (int, error) {
			ran.Add(1)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(time.Millisecond):
			}
			return 1, nil
		})
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Map did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatal("cancellation did not stop the sweep early")
	}
	_ = out
	// Allow workers to unwind, then check for leaked goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestCollectRecordsPerItemErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4, 5}
	bad := errors.New("bad item")
	out, errs, err := Collect(context.Background(), items, 3, func(_ context.Context, i, item int) (int, error) {
		if item%2 == 1 {
			return 0, bad
		}
		return item * 10, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range items {
		if item%2 == 1 {
			if !errors.Is(errs[i], bad) {
				t.Fatalf("errs[%d] = %v, want bad", i, errs[i])
			}
		} else if errs[i] != nil || out[i] != item*10 {
			t.Fatalf("item %d: out=%d errs=%v", i, out[i], errs[i])
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Fatalf("Workers(-1, 0) = %d", got)
	}
}
