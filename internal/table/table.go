// Package table renders aligned plain-text tables for the experiment
// harness and CLI output (Go has no tabular-report ecosystem in the
// standard library beyond text/tabwriter; this adds headers, rules, and
// numeric formatting conventions shared across the experiments).
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	headers []string
	rows    [][]string
}

// New creates a table with the given column headers.
func New(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells are padded empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v for strings and ints, and %.6g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.6g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.6g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Len returns the number of data rows.
func (t *Table) Len() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.headers)); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	cells := make([]string, len(t.headers))
	for i, h := range t.headers {
		cells[i] = esc(h)
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string (plain-text form).
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}
