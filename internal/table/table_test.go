package table

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("policy", "SPoA")
	tb.AddRow("exclusive", "1.0000")
	tb.AddRow("sharing", "1.2345")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "policy") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule: %q", lines[1])
	}
	// Columns align: "exclusive" is the widest cell in column 1.
	if !strings.HasPrefix(lines[3], "sharing  ") {
		t.Errorf("row padding: %q", lines[3])
	}
}

func TestAddRowPadsAndTruncates(t *testing.T) {
	tb := New("a", "b")
	tb.AddRow("1")           // short row pads
	tb.AddRow("1", "2", "3") // long row truncates
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Error("extra cell not dropped")
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("name", "value", "count")
	tb.AddRowf("pi", 3.14159265358979, 42)
	out := tb.String()
	if !strings.Contains(out, "3.14159") {
		t.Errorf("float formatting: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Errorf("int formatting: %s", out)
	}
	tb.AddRowf("f32", float32(2.5), "s")
	if !strings.Contains(tb.String(), "2.5") {
		t.Error("float32 formatting")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := New("col|1", "col2")
	tb.AddRow("a|b", "c")
	var b strings.Builder
	if err := tb.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("markdown lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], `col\|1`) {
		t.Errorf("pipe not escaped in header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	if !strings.Contains(lines[2], `a\|b`) {
		t.Errorf("pipe not escaped in cell: %q", lines[2])
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("only", "headers")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Errorf("empty table render: %q", out)
	}
	if tb.Len() != 0 {
		t.Errorf("Len = %d", tb.Len())
	}
}
