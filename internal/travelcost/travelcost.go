// Package travelcost implements the extension the paper leaves as future
// work in Section 5.1: "the cost incurred when visiting a site x (e.g., the
// energetic cost consumed while traveling to x)". The reward policy becomes
//
//	I(x, l) = f(x) * C(l) - t(x),
//
// where t(x) >= 0 is the travel cost of site x (paid regardless of
// congestion). Coverage is unchanged — the group still values visited sites
// at f(x) — so travel costs distort the equilibrium away from sigma* and
// the exclusive policy loses its SPoA = 1 guarantee; the package quantifies
// that distortion.
//
// Equilibrium structure: the value of site x at symmetric strategy p is
// nu_p(x) = f(x) * g(p(x)) - t(x) with g the congestion discount, still
// strictly decreasing in p(x) for non-degenerate policies, so the IFD
// exists and is unique by the same argument as Observation 2; Solve finds
// it by the same bisection scheme as the base game. Note the support need
// not be a prefix: a valuable-but-distant site can be skipped in favour of
// a poorer nearby one.
package travelcost

import (
	"errors"
	"fmt"
	"math"

	"dispersal/internal/coverage"
	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/strategy"
)

// Errors returned by the solver.
var (
	ErrDim      = errors.New("travelcost: cost and value dimensions differ")
	ErrNegative = errors.New("travelcost: travel costs must be >= 0")
	ErrPlayers  = errors.New("travelcost: player count k must be >= 1")
	ErrAllSunk  = errors.New("travelcost: every site has negative solo payoff")
)

// Costs is a vector of per-site travel costs t(x) >= 0.
type Costs []float64

// Validate checks non-negativity and finiteness.
func (t Costs) Validate() error {
	for i, v := range t {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: t(%d) = %v", ErrNegative, i+1, v)
		}
	}
	return nil
}

// Uniform returns equal travel cost c for m sites.
func Uniform(m int, c float64) Costs {
	t := make(Costs, m)
	for i := range t {
		t[i] = c
	}
	return t
}

// Linear returns travel costs growing linearly from lo (site 1) to hi
// (site M) — the "better sites are farther" landscape.
func Linear(m int, lo, hi float64) Costs {
	t := make(Costs, m)
	if m == 1 {
		t[0] = lo
		return t
	}
	for i := range t {
		t[i] = lo + (hi-lo)*float64(i)/float64(m-1)
	}
	return t
}

// Value returns nu_p(x) = f(x)*g(p(x)) - t(x) for the travel-cost game.
func Value(f site.Values, t Costs, p strategy.Strategy, k int, c policy.Congestion, x int) float64 {
	return f[x]*ifd.Gee(c, k, p[x]) - t[x]
}

// Solve returns the IFD of the travel-cost game and its equilibrium value.
// Players avoid sites whose solo payoff f(x) - t(x) is below the common
// equilibrium value; if every site has f(x) - t(x) < 0 the game has no
// profitable participation and ErrAllSunk is returned (staying home is not
// modelled).
func Solve(f site.Values, t Costs, k int, c policy.Congestion) (strategy.Strategy, float64, error) {
	if err := f.Validate(); err != nil {
		return nil, 0, err
	}
	if len(t) != len(f) {
		return nil, 0, fmt.Errorf("%w: %d costs, %d values", ErrDim, len(t), len(f))
	}
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if k < 1 {
		return nil, 0, fmt.Errorf("%w: k=%d", ErrPlayers, k)
	}
	if err := policy.Validate(c, k); err != nil {
		return nil, 0, err
	}
	m := len(f)

	// Solo payoffs f(x) - t(x) bound the equilibrium value from above.
	bestSolo := math.Inf(-1)
	for x := range f {
		if v := f[x] - t[x]; v > bestSolo {
			bestSolo = v
		}
	}
	if bestSolo < 0 {
		return nil, 0, fmt.Errorf("%w (best solo payoff %v)", ErrAllSunk, bestSolo)
	}
	if k == 1 {
		// Single player: pick the best solo site.
		best, bx := math.Inf(-1), 0
		for x := range f {
			if v := f[x] - t[x]; v > best {
				best, bx = v, x
			}
		}
		return strategy.Delta(m, bx), best, nil
	}

	gAtOne := ifd.Gee(c, k, 1)
	constantG := true
	for l := 2; l <= k; l++ {
		if c.At(l) != c.At(1) {
			constantG = false
			break
		}
	}
	if constantG {
		// Degenerate congestion: equilibrium concentrates on argmax of
		// solo payoff.
		best, bx := math.Inf(-1), 0
		for x := range f {
			if v := f[x] - t[x]; v > best {
				best, bx = v, x
			}
		}
		return strategy.Delta(m, bx), best, nil
	}

	massAt := func(nu float64) (strategy.Strategy, float64) {
		p := make(strategy.Strategy, m)
		var total numeric.Accumulator
		for x := 0; x < m; x++ {
			solo := f[x] - t[x]
			if solo <= nu {
				continue
			}
			target := (nu + t[x]) / f[x]
			if target <= gAtOne {
				p[x] = 1
				total.Add(1)
				continue
			}
			q, err := numeric.Brent(func(q float64) float64 {
				return ifd.Gee(c, k, q) - target
			}, 0, 1, 1e-15, 200)
			if err != nil {
				// g is monotone and the target is bracketed by
				// construction; treat failure as zero mass.
				continue
			}
			p[x] = q
			total.Add(q)
		}
		return p, total.Sum()
	}

	hi := bestSolo
	lo := math.Inf(1)
	for x := range f {
		if v := f[x]*gAtOne - t[x]; v < lo {
			lo = v
		}
	}
	lo -= 1 + math.Abs(lo)*1e-3
	for iter := 0; iter < 200; iter++ {
		mid := lo + (hi-lo)/2
		_, tot := massAt(mid)
		if tot > 1 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-14*(1+math.Abs(hi)) {
			break
		}
	}
	nu := lo + (hi-lo)/2
	p, _ := massAt(nu)
	if _, err := p.Normalize(); err != nil {
		return nil, 0, fmt.Errorf("travelcost: normalization failed: %w", err)
	}
	return p, nu, nil
}

// Check verifies the IFD conditions of the travel-cost game within tol.
func Check(f site.Values, t Costs, p strategy.Strategy, k int, c policy.Congestion, tol float64) error {
	if len(f) != len(p) || len(f) != len(t) {
		return ErrDim
	}
	nu := math.Inf(-1)
	first := true
	for x := range f {
		if p[x] <= tol {
			continue
		}
		v := Value(f, t, p, k, c, x)
		if first {
			nu, first = v, false
			continue
		}
		if !numeric.AlmostEqual(v, nu, tol) {
			return fmt.Errorf("travelcost: explored sites have unequal values (%v vs %v)", nu, v)
		}
	}
	if first {
		return errors.New("travelcost: empty support")
	}
	for x := range f {
		if p[x] > tol {
			continue
		}
		if v := f[x] - t[x]; v > nu+tol*(1+math.Abs(nu)) {
			return fmt.Errorf("travelcost: unexplored site %d yields %v > nu %v", x+1, v, nu)
		}
	}
	return nil
}

// CoverageDistortion quantifies how much coverage the exclusive policy
// loses to travel costs: it returns the coverage of the travel-cost IFD and
// the cost-free optimal coverage Cover(sigma*), both measured on f.
func CoverageDistortion(f site.Values, t Costs, k int) (eqCover, optCover float64, err error) {
	p, _, err := Solve(f, t, k, policy.Exclusive{})
	if err != nil {
		return 0, 0, err
	}
	sigma, _, err := ifd.Exclusive(f, k)
	if err != nil {
		return 0, 0, err
	}
	return coverage.Cover(f, p, k), coverage.Cover(f, sigma, k), nil
}
