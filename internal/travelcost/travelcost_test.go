package travelcost

import (
	"errors"
	"math/rand/v2"
	"testing"

	"dispersal/internal/ifd"
	"dispersal/internal/numeric"
	"dispersal/internal/policy"
	"dispersal/internal/site"
)

func TestZeroCostsRecoverBaseGame(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(10)
		k := 2 + rng.IntN(6)
		f := site.Random(rng, m, 0.2, 3)
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}} {
			pBase, nuBase, err := ifd.Solve(f, k, c)
			if err != nil {
				t.Fatal(err)
			}
			pTC, nuTC, err := Solve(f, Uniform(m, 0), k, c)
			if err != nil {
				t.Fatal(err)
			}
			if d := pBase.LInf(pTC); d > 1e-7 {
				t.Fatalf("%s: zero-cost IFD deviates by %v", c.Name(), d)
			}
			if !numeric.AlmostEqual(nuBase, nuTC, 1e-6) {
				t.Fatalf("%s: nu %v vs %v", c.Name(), nuBase, nuTC)
			}
		}
	}
}

func TestUniformCostShiftsNuNotStrategy(t *testing.T) {
	// A constant travel cost subtracts from every site equally: the
	// equilibrium strategy is unchanged, nu drops by the cost.
	f := site.Geometric(5, 1, 0.7)
	k := 3
	p0, nu0, err := Solve(f, Uniform(5, 0), k, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	pc, nuc, err := Solve(f, Uniform(5, 0.05), k, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if d := p0.LInf(pc); d > 1e-6 {
		t.Errorf("uniform cost changed the strategy by %v", d)
	}
	if !numeric.AlmostEqual(nu0-0.05, nuc, 1e-6) {
		t.Errorf("nu: %v vs %v - 0.05", nuc, nu0)
	}
}

func TestSolveSatisfiesIFDConditions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 7))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.IntN(8)
		k := 2 + rng.IntN(5)
		f := site.Random(rng, m, 0.5, 3)
		tc := make(Costs, m)
		for i := range tc {
			tc[i] = 0.3 * rng.Float64()
		}
		for _, c := range []policy.Congestion{policy.Exclusive{}, policy.Sharing{}, policy.TwoPoint{C2: -0.2}} {
			p, _, err := Solve(f, tc, k, c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if err := Check(f, tc, p, k, c, 1e-6); err != nil {
				t.Fatalf("%s M=%d k=%d: %v", c.Name(), m, k, err)
			}
		}
	}
}

func TestDistantValuableSiteSkipped(t *testing.T) {
	// Site 1 is the most valuable but prohibitively distant; the
	// equilibrium support is NOT a prefix (unlike the base game).
	f := site.Values{1, 0.9, 0.8}
	tc := Costs{0.95, 0, 0}
	p, _, err := Solve(f, tc, 3, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if p[0] > 1e-6 {
		t.Errorf("distant site still explored: %v", p)
	}
	if p[1] < 0.1 || p[2] < 0.1 {
		t.Errorf("near sites underexplored: %v", p)
	}
}

func TestCoverageDistortionIsNonPositive(t *testing.T) {
	// Travel costs can only (weakly) reduce equilibrium coverage relative
	// to the cost-free optimum.
	rng := rand.New(rand.NewPCG(9, 2))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.IntN(10)
		k := 2 + rng.IntN(6)
		f := site.Random(rng, m, 0.5, 2)
		tc := make(Costs, m)
		for i := range tc {
			tc[i] = 0.2 * rng.Float64()
		}
		eq, opt, err := CoverageDistortion(f, tc, k)
		if err != nil {
			t.Fatal(err)
		}
		if eq > opt+1e-9 {
			t.Fatalf("travel-cost equilibrium coverage %v exceeds optimum %v", eq, opt)
		}
	}
}

func TestCoverageDistortionStrictForSkewedCosts(t *testing.T) {
	// The paper's Section 5.1 point: with travel costs the exclusive
	// policy is no longer coverage-optimal.
	f := site.Values{1, 0.9}
	tc := Costs{0.5, 0} // the good site is expensive to reach
	eq, opt, err := CoverageDistortion(f, tc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if eq >= opt-1e-9 {
		t.Errorf("expected strict coverage loss: eq %v, opt %v", eq, opt)
	}
}

func TestSolveKOnePicksBestSoloSite(t *testing.T) {
	f := site.Values{1, 0.9}
	tc := Costs{0.5, 0.1}
	p, nu, err := Solve(f, tc, 1, policy.Exclusive{})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 1 {
		t.Errorf("k=1 chose %v, want site 2 (solo payoff 0.8 > 0.5)", p)
	}
	if !numeric.AlmostEqual(nu, 0.8, 1e-12) {
		t.Errorf("nu = %v", nu)
	}
}

func TestSolveConstantPolicyWithCosts(t *testing.T) {
	f := site.Values{1, 0.9}
	tc := Costs{0.5, 0}
	p, nu, err := Solve(f, tc, 4, policy.Constant{})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 1 {
		t.Errorf("constant policy should pile on best solo site: %v", p)
	}
	if !numeric.AlmostEqual(nu, 0.9, 1e-12) {
		t.Errorf("nu = %v", nu)
	}
}

func TestSolveErrors(t *testing.T) {
	f := site.Values{1, 0.5}
	if _, _, err := Solve(f, Costs{0}, 2, policy.Exclusive{}); !errors.Is(err, ErrDim) {
		t.Error("dim mismatch accepted")
	}
	if _, _, err := Solve(f, Costs{0, -1}, 2, policy.Exclusive{}); !errors.Is(err, ErrNegative) {
		t.Error("negative cost accepted")
	}
	if _, _, err := Solve(f, Costs{0, 0}, 0, policy.Exclusive{}); !errors.Is(err, ErrPlayers) {
		t.Error("k=0 accepted")
	}
	if _, _, err := Solve(f, Costs{5, 5}, 2, policy.Exclusive{}); !errors.Is(err, ErrAllSunk) {
		t.Error("all-sunk game accepted")
	}
	if _, _, err := Solve(site.Values{0.5, 1}, Costs{0, 0}, 2, policy.Exclusive{}); err == nil {
		t.Error("unsorted f accepted")
	}
}

func TestCostGenerators(t *testing.T) {
	u := Uniform(3, 0.2)
	if len(u) != 3 || u[0] != 0.2 || u[2] != 0.2 {
		t.Errorf("Uniform = %v", u)
	}
	l := Linear(3, 0, 1)
	if l[0] != 0 || l[1] != 0.5 || l[2] != 1 {
		t.Errorf("Linear = %v", l)
	}
	if single := Linear(1, 0.3, 9); single[0] != 0.3 {
		t.Errorf("Linear(1) = %v", single)
	}
	if err := (Costs{0, 1}).Validate(); err != nil {
		t.Errorf("valid costs rejected: %v", err)
	}
}
