// Package warmcache is the dispersald server's cross-request warm-state
// store: a small LRU of solver-core states (internal/solve.State) keyed by
// landscape locality (speccodec.LocalityKey — spec shape plus
// log-quantized site values).
//
// Where rescache memoizes exact results under exact keys, warmcache trades
// exactness for reach: a state solved for any landscape in the same
// locality bucket seeds a warm solve of a new, slightly different
// landscape, so isolated /v1/analyze requests and fresh trajectory chains
// inherit the work of every sufficiently near past solve. Correctness never
// depends on the cache — every warm path verifies its bracket against the
// actual landscape and falls back cold — so eviction, staleness and racing
// writers are all benign: the worst a bad entry costs is one wasted warm
// attempt, which the server counts as a fallback.
package warmcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dispersal/internal/solve"
)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Lookup calls that found a state.
	Hits int64 `json:"hits"`
	// Misses counts Lookup calls that found nothing.
	Misses int64 `json:"misses"`
	// Stores counts Store calls that recorded a state (inserts and
	// same-key replacements alike).
	Stores int64 `json:"stores"`
	// Evictions counts entries dropped by the LRU policy.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached states.
	Entries int64 `json:"entries"`
}

// Cache is a mutex-guarded LRU of solver-core states. The zero value is not
// usable; construct with New. All methods are safe for concurrent use;
// concurrent Store calls under one key keep the latest write (states are
// immutable, so any of them is a valid seed).
type Cache struct {
	mu sync.Mutex
	// capacity bounds len(items); the least-recently-used entry is evicted
	// beyond it.
	capacity int
	// ll orders entries most-recently-used first; element values are
	// *entry.
	ll *list.List
	// items indexes ll by key.
	items map[string]*list.Element

	hits, misses, stores, evictions atomic.Int64
}

type entry struct {
	key string
	st  *solve.State
}

// DefaultCapacity is the entry bound selected when New is given a
// non-positive capacity. Warm states are small (a few strategies per
// landscape), so the default leans generous.
const DefaultCapacity = 1024

// New builds a cache holding at most capacity states; capacity <= 0 selects
// DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Lookup returns the state stored under key, refreshing its recency, or nil
// when the key is absent.
func (c *Cache) Lookup(key string) *solve.State {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	c.ll.MoveToFront(el)
	st := el.Value.(*entry).st
	c.mu.Unlock()
	c.hits.Add(1)
	return st
}

// Store records st under key as the most-recent entry, replacing any
// previous state under the same key and evicting the least-recently-used
// entry beyond capacity. A nil st is ignored — there is nothing to seed
// from.
func (c *Cache) Store(key string, st *solve.State) {
	if st == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).st = st
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.stores.Add(1)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, st: st})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.stores.Add(1)
}

// Len returns the current number of cached states.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stores:    c.stores.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
	}
}
