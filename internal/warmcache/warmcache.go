// Package warmcache is the dispersald server's cross-request warm-state
// store: a small LRU of solver-core states (internal/solve.State) keyed by
// landscape locality (speccodec.LocalityKey — spec shape plus
// log-quantized site values).
//
// Where rescache memoizes exact results under exact keys, warmcache trades
// exactness for reach: a state solved for any landscape in the same
// locality bucket seeds a warm solve of a new, slightly different
// landscape, so isolated /v1/analyze requests and fresh trajectory chains
// inherit the work of every sufficiently near past solve. Each bucket keeps
// the two most recent candidate states, and Lookup picks whichever
// landscape is nearer the one about to be solved — on bursty drift the
// newest state is not always the closest. Correctness never depends on the
// cache — every warm path verifies its bracket against the actual landscape
// and falls back cold — so eviction, staleness and racing writers are all
// benign: the worst a bad entry costs is one wasted warm attempt, which the
// server counts as a fallback.
//
// The cache is also the unit of federation: Entries snapshots its contents
// for the statestore's persistence files, and Peek serves single buckets to
// peer replicas (internal/peer) without disturbing recency or counters.
package warmcache

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"dispersal/internal/site"
	"dispersal/internal/solve"
)

// CandidatesPerBucket is how many states one locality bucket retains,
// newest first. Two is enough to cover the oscillating-drift case (the
// previous upswing's state is nearer than the last downswing's) without
// turning the seed-time distance scan into a search.
const CandidatesPerBucket = 2

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Lookup calls that found a state.
	Hits int64 `json:"hits"`
	// Misses counts Lookup calls that found nothing.
	Misses int64 `json:"misses"`
	// Stores counts Store calls that recorded a state (inserts and
	// same-key pushes alike).
	Stores int64 `json:"stores"`
	// Evictions counts entries dropped by the LRU policy.
	Evictions int64 `json:"evictions"`
	// SecondWins counts Lookup calls answered by the bucket's second
	// (older) candidate because its landscape was strictly nearer the
	// query's than the newest one's.
	SecondWins int64 `json:"second_wins"`
	// Entries is the current number of cached buckets.
	Entries int64 `json:"entries"`
}

// Cache is a mutex-guarded LRU of solver-core states. The zero value is not
// usable; construct with New. All methods are safe for concurrent use;
// concurrent Store calls under one key keep the latest writes (states are
// immutable, so any of them is a valid seed).
type Cache struct {
	mu sync.Mutex
	// capacity bounds len(items); the least-recently-used entry is evicted
	// beyond it.
	capacity int
	// ll orders entries most-recently-used first; element values are
	// *entry.
	ll *list.List
	// items indexes ll by key.
	items map[string]*list.Element

	hits, misses, stores, evictions, secondWins atomic.Int64
}

// entry is one locality bucket: up to CandidatesPerBucket states, newest
// first.
type entry struct {
	key string
	st  [CandidatesPerBucket]*solve.State
}

// Entry is one bucket of a cache snapshot: its locality key and its
// candidate states, newest first.
type Entry struct {
	Key    string
	States []*solve.State
}

// DefaultCapacity is the bucket bound selected when New is given a
// non-positive capacity. Warm states are small (a few strategies per
// landscape), so the default leans generous.
const DefaultCapacity = 1024

// New builds a cache holding at most capacity buckets; capacity <= 0
// selects DefaultCapacity.
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// drift measures how far st's landscape is from f, for the candidate pick;
// a state of a different shape (possible only through a hand-fed cache) is
// infinitely far.
func drift(st *solve.State, f site.Values) float64 {
	if st == nil || len(st.Landscape()) != len(f) {
		return math.Inf(1)
	}
	return st.Drift(f)
}

// Lookup returns the bucket candidate whose landscape is nearest f,
// refreshing the bucket's recency, or nil when the key is absent. A nil or
// empty f skips the distance pick and returns the newest candidate.
func (c *Cache) Lookup(key string, f site.Values) *solve.State {
	c.mu.Lock()
	el, ok := c.items[key]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*entry)
	st, second := e.st[0], false
	if len(f) > 0 && e.st[1] != nil && drift(e.st[1], f) < drift(e.st[0], f) {
		st, second = e.st[1], true
	}
	c.mu.Unlock()
	c.hits.Add(1)
	if second {
		c.secondWins.Add(1)
	}
	return st
}

// Store records st under key as the bucket's newest candidate, demoting the
// previous newest to second place, and evicts the least-recently-used
// bucket beyond capacity. A nil st is ignored — there is nothing to seed
// from.
func (c *Cache) Store(key string, st *solve.State) {
	if st == nil {
		return
	}
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		if e.st[0] != st {
			copy(e.st[1:], e.st[:])
			e.st[0] = st
		}
		c.ll.MoveToFront(el)
		c.mu.Unlock()
		c.stores.Add(1)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, st: [CandidatesPerBucket]*solve.State{st}})
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*entry).key)
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	c.stores.Add(1)
}

// Peek returns the bucket's candidates (newest first) without touching
// recency or the hit/miss counters — the read path of the peer-exchange
// handler, whose traffic must not distort the serving replica's own LRU or
// telemetry. nil when the key is absent.
func (c *Cache) Peek(key string) []*solve.State {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	return el.Value.(*entry).candidates()
}

// candidates flattens an entry's non-nil states, newest first. Caller holds
// the lock.
func (e *entry) candidates() []*solve.State {
	out := make([]*solve.State, 0, CandidatesPerBucket)
	for _, st := range e.st {
		if st != nil {
			out = append(out, st)
		}
	}
	return out
}

// Entries snapshots every bucket, most-recently-used first — the
// statestore's persistence source. The states themselves are immutable and
// shared, not copied.
func (c *Cache) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		out = append(out, Entry{Key: e.key, States: e.candidates()})
	}
	return out
}

// Keys returns every cached bucket key, most-recently-used first, without
// touching recency or counters — the stats path's input for per-replica
// ring accounting (how many cached buckets this replica owns).
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Len returns the current number of cached buckets.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Stores:     c.stores.Load(),
		Evictions:  c.evictions.Load(),
		SecondWins: c.secondWins.Load(),
		Entries:    int64(c.Len()),
	}
}
