package warmcache

import (
	"fmt"
	"sync"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

func stateN(n int) *solve.State {
	f := site.Values{1, 0.5}
	return solve.New(f, 2, policy.Sharing{}).WithEq(strategy.Strategy{0.75, 0.25}, float64(n), false)
}

func TestLookupStoreAndReplace(t *testing.T) {
	c := New(4)
	if st := c.Lookup("a"); st != nil {
		t.Fatal("empty cache returned a state")
	}
	c.Store("a", stateN(1))
	st := c.Lookup("a")
	if st == nil || st.Nu() != 1 {
		t.Fatalf("lookup after store: %+v", st)
	}
	// Same-key store replaces.
	c.Store("a", stateN(2))
	if st := c.Lookup("a"); st.Nu() != 2 {
		t.Fatalf("replacement not visible: nu=%v", st.Nu())
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after same-key stores", c.Len())
	}
	// Nil stores are ignored.
	c.Store("a", nil)
	if st := c.Lookup("a"); st == nil || st.Nu() != 2 {
		t.Fatal("nil store clobbered the entry")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 1 || s.Stores != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Store(fmt.Sprintf("k%d", i), stateN(i))
	}
	// Touch k0 so k1 becomes the least recently used.
	if c.Lookup("k0") == nil {
		t.Fatal("k0 missing before eviction")
	}
	c.Store("k3", stateN(3))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Lookup("k1") != nil {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.Lookup(k) == nil {
			t.Fatalf("recent entry %s was evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestConcurrentSameKeySeeding hammers one key from many goroutines mixing
// stores and lookups; run under -race this pins the locking discipline, and
// every observed state must be one that some goroutine actually stored.
func TestConcurrentSameKeySeeding(t *testing.T) {
	c := New(8)
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c.Store("shared", stateN(id))
				st := c.Lookup("shared")
				if st == nil {
					t.Error("shared key vanished mid-run")
					return
				}
				if nu := st.Nu(); nu < 0 || nu >= goroutines {
					t.Errorf("observed state no goroutine stored: nu=%v", nu)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("len = %d after same-key hammering", c.Len())
	}
}

// TestConcurrentDistinctKeys mixes stores and lookups across more keys than
// capacity under -race: evictions and inserts must stay consistent.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				key := fmt.Sprintf("k%d", (id+r)%10)
				c.Store(key, stateN(id))
				c.Lookup(key)
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 4 {
		t.Fatalf("len = %d exceeds capacity 4", n)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if c.capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", c.capacity, DefaultCapacity)
	}
}
