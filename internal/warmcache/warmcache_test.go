package warmcache

import (
	"fmt"
	"sync"
	"testing"

	"dispersal/internal/policy"
	"dispersal/internal/site"
	"dispersal/internal/solve"
	"dispersal/internal/strategy"
)

func stateN(n int) *solve.State {
	f := site.Values{1, 0.5}
	return solve.New(f, 2, policy.Sharing{}).WithEq(strategy.Strategy{0.75, 0.25}, float64(n), false)
}

// stateAt builds a state solved on the landscape {top, 0.5}, so tests can
// place candidates at chosen distances from a query landscape.
func stateAt(top float64) *solve.State {
	f := site.Values{top, 0.5}
	return solve.New(f, 2, policy.Sharing{}).WithEq(strategy.Strategy{0.75, 0.25}, top, false)
}

func TestLookupStoreAndReplace(t *testing.T) {
	c := New(4)
	if st := c.Lookup("a", nil); st != nil {
		t.Fatal("empty cache returned a state")
	}
	c.Store("a", stateN(1))
	st := c.Lookup("a", nil)
	if st == nil || st.Nu() != 1 {
		t.Fatalf("lookup after store: %+v", st)
	}
	// Same-key store demotes the previous state to second candidate; the
	// newest is returned when no query landscape is given.
	c.Store("a", stateN(2))
	if st := c.Lookup("a", nil); st.Nu() != 2 {
		t.Fatalf("newest candidate not visible: nu=%v", st.Nu())
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after same-key stores", c.Len())
	}
	// Nil stores are ignored.
	c.Store("a", nil)
	if st := c.Lookup("a", nil); st == nil || st.Nu() != 2 {
		t.Fatal("nil store clobbered the entry")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 1 || s.Stores != 2 || s.Entries != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestSecondCandidateWinsWhenNearer: with two candidates in a bucket, the
// one whose landscape is nearer the query must seed, even when it is the
// older of the two — and the pick is counted.
func TestSecondCandidateWinsWhenNearer(t *testing.T) {
	c := New(4)
	near, far := stateAt(1.0), stateAt(1.3)
	c.Store("b", near) // older
	c.Store("b", far)  // newest
	query := site.Values{1.01, 0.5}
	st := c.Lookup("b", query)
	if st != near {
		t.Fatalf("lookup picked the farther candidate (nu=%v)", st.Nu())
	}
	if s := c.Stats(); s.SecondWins != 1 {
		t.Fatalf("second_wins = %d, want 1", s.SecondWins)
	}
	// A query nearer the newest candidate picks it, without counting.
	if st := c.Lookup("b", site.Values{1.29, 0.5}); st != far {
		t.Fatalf("lookup picked the farther candidate (nu=%v)", st.Nu())
	}
	if s := c.Stats(); s.SecondWins != 1 {
		t.Fatalf("second_wins = %d after newest-wins lookup", s.SecondWins)
	}
}

// TestBucketKeepsTwoCandidates: a third store drops the oldest state, not
// the newest two.
func TestBucketKeepsTwoCandidates(t *testing.T) {
	c := New(4)
	for i := 1; i <= 3; i++ {
		c.Store("k", stateN(i))
	}
	got := c.Peek("k")
	if len(got) != 2 || got[0].Nu() != 3 || got[1].Nu() != 2 {
		nus := make([]float64, len(got))
		for i, st := range got {
			nus[i] = st.Nu()
		}
		t.Fatalf("candidates = %v, want [3 2]", nus)
	}
}

// TestPeekDoesNotTouchCountersOrRecency: the peer-serving read must leave
// hits/misses and the LRU order unchanged.
func TestPeekDoesNotTouchCountersOrRecency(t *testing.T) {
	c := New(2)
	c.Store("old", stateN(1))
	c.Store("new", stateN(2))
	if c.Peek("old") == nil {
		t.Fatal("peek missed a present key")
	}
	if c.Peek("absent") != nil {
		t.Fatal("peek invented a state")
	}
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("peek moved counters: %+v", s)
	}
	// "old" was peeked, not looked up, so it is still the LRU victim.
	c.Store("third", stateN(3))
	if c.Peek("old") != nil {
		t.Fatal("peek refreshed recency: old survived eviction")
	}
}

func TestEntriesSnapshotsMRUFirst(t *testing.T) {
	c := New(4)
	c.Store("a", stateN(1))
	c.Store("b", stateN(2))
	c.Store("b", stateN(3))
	entries := c.Entries()
	if len(entries) != 2 || entries[0].Key != "b" || entries[1].Key != "a" {
		t.Fatalf("entries = %+v", entries)
	}
	if len(entries[0].States) != 2 || entries[0].States[0].Nu() != 3 {
		t.Fatalf("bucket b candidates wrong: %+v", entries[0].States)
	}
}

func TestEvictionIsLRU(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Store(fmt.Sprintf("k%d", i), stateN(i))
	}
	// Touch k0 so k1 becomes the least recently used.
	if c.Lookup("k0", nil) == nil {
		t.Fatal("k0 missing before eviction")
	}
	c.Store("k3", stateN(3))
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if c.Lookup("k1", nil) != nil {
		t.Fatal("LRU entry k1 survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.Lookup(k, nil) == nil {
			t.Fatalf("recent entry %s was evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestConcurrentSameKeySeeding hammers one key from many goroutines mixing
// stores and lookups; run under -race this pins the locking discipline, and
// every observed state must be one that some goroutine actually stored.
func TestConcurrentSameKeySeeding(t *testing.T) {
	c := New(8)
	const goroutines = 16
	const rounds = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				c.Store("shared", stateN(id))
				st := c.Lookup("shared", site.Values{1, 0.5})
				if st == nil {
					t.Error("shared key vanished mid-run")
					return
				}
				if nu := st.Nu(); nu < 0 || nu >= goroutines {
					t.Errorf("observed state no goroutine stored: nu=%v", nu)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 1 {
		t.Fatalf("len = %d after same-key hammering", c.Len())
	}
}

// TestConcurrentDistinctKeys mixes stores, lookups, peeks and snapshots
// across more keys than capacity under -race: evictions and inserts must
// stay consistent.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < 100; r++ {
				key := fmt.Sprintf("k%d", (id+r)%10)
				c.Store(key, stateN(id))
				c.Lookup(key, nil)
				c.Peek(key)
				if r%25 == 0 {
					c.Entries()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > 4 {
		t.Fatalf("len = %d exceeds capacity 4", n)
	}
}

func TestDefaultCapacity(t *testing.T) {
	c := New(0)
	if c.capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", c.capacity, DefaultCapacity)
	}
}
