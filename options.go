package dispersal

import (
	"errors"
	"fmt"
)

// ErrOption reports an invalid functional option passed to NewGame.
var ErrOption = errors.New("dispersal: invalid option")

// gameOptions carries the per-Game configuration set by functional options.
// Every Game owns a value (never a pointer), so derived games and sweeps can
// copy and override it freely.
type gameOptions struct {
	// workers bounds the worker pools of Simulate and Sweep; 0 selects
	// GOMAXPROCS.
	workers int
	// tol is the numerical tolerance for equilibrium audits and
	// tie-breaking.
	tol float64
	// seed drives every randomized routine that is not given an explicit
	// seed: mutant panels, welfare restarts, policy search.
	seed uint64
	// restarts is the number of random restarts of the welfare optimizer
	// (on top of its structured starting points).
	restarts int
	// mutants is the size of the random mutant panel generated when
	// ESSAudit is called without an explicit panel.
	mutants int
	// warmChain controls whether Sweep links locality-adjacent items into
	// warm-seeding chains: 0 chains exactly when the sweep is sequential
	// (the default preserves bit-reproducibility of parallel sweeps), 1
	// forces chaining on, -1 forces it off.
	warmChain int
}

// defaultGameOptions are the values used when no option overrides them. The
// restart and panel sizes match the constants the pre-option API hard-coded,
// so a Game built with no options behaves exactly as before.
func defaultGameOptions() gameOptions {
	return gameOptions{
		workers:  0,
		tol:      1e-9,
		seed:     0x1805_01319, // the paper's arXiv id, for want of entropy
		restarts: 8,
		mutants:  32,
	}
}

// Option configures a Game at construction time. Options are applied in
// order by NewGame; an invalid option makes NewGame fail with an error
// wrapping ErrOption.
type Option func(*gameOptions) error

// WithWorkers bounds the worker pools used by Simulate, SimulateProfile and
// Sweep. n = 0 restores the default (GOMAXPROCS); negative counts are
// invalid.
func WithWorkers(n int) Option {
	return func(o *gameOptions) error {
		if n < 0 {
			return fmt.Errorf("%w: workers must be >= 0, got %d", ErrOption, n)
		}
		o.workers = n
		return nil
	}
}

// WithTolerance sets the numerical tolerance used by equilibrium audits
// (ESSAudit tie-breaking) and by Analysis consistency checks. It must be
// positive.
func WithTolerance(tol float64) Option {
	return func(o *gameOptions) error {
		if !(tol > 0) {
			return fmt.Errorf("%w: tolerance must be > 0, got %v", ErrOption, tol)
		}
		o.tol = tol
		return nil
	}
}

// WithSeed sets the seed of every randomized routine that is not handed an
// explicit seed: simulation streams, mutant panels, welfare restarts and the
// policy-design search. Two games with equal parameters and equal seeds
// produce identical results.
func WithSeed(seed uint64) Option {
	return func(o *gameOptions) error {
		o.seed = seed
		return nil
	}
}

// WithRestarts sets how many seeded random restarts the welfare optimizer
// adds to its structured starting points (MaxWelfare; previously a
// hard-coded 8). Zero keeps only the structured starts.
func WithRestarts(n int) Option {
	return func(o *gameOptions) error {
		if n < 0 {
			return fmt.Errorf("%w: restarts must be >= 0, got %d", ErrOption, n)
		}
		o.restarts = n
		return nil
	}
}

// WithWarmChaining overrides when Sweep links locality-adjacent items into
// warm-seeding chains (each item's solver state seeding the next nearest
// landscape's solve). By default chaining engages only on sequential sweeps
// (WithWorkers(1)), where the chain order is also the execution order and
// results stay bit-reproducible. WithWarmChaining(true) extends chaining to
// parallel sweeps — each item still verifies its seed and answers within
// solver tolerance of a cold solve, but which items manage to seed which
// depends on scheduling, so exact bits may vary run to run.
// WithWarmChaining(false) disables chaining everywhere.
func WithWarmChaining(enabled bool) Option {
	return func(o *gameOptions) error {
		if enabled {
			o.warmChain = 1
		} else {
			o.warmChain = -1
		}
		return nil
	}
}

// WithMutants sets the random-panel size used when ESSAudit is called with a
// nil mutant slice (previously a positional argument).
func WithMutants(n int) Option {
	return func(o *gameOptions) error {
		if n < 0 {
			return fmt.Errorf("%w: mutants must be >= 0, got %d", ErrOption, n)
		}
		o.mutants = n
		return nil
	}
}
