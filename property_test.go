package dispersal_test

// Property-based checks of the paper's headline results on randomly drawn
// games. The generators are seeded, so failures are reproducible; each
// failure message carries the game parameters.

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"dispersal"
)

// randomValues draws m site values i.i.d. from Uniform(lo, hi) and sorts
// them non-increasingly, the paper's convention.
func randomValues(rng *rand.Rand, m int, lo, hi float64) dispersal.Values {
	out := make(dispersal.Values, m)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// randomGame draws a game shape: 2..9 sites, 2..6 players.
func randomGame(t *testing.T, rng *rand.Rand, c dispersal.Congestion) *dispersal.Game {
	t.Helper()
	m := 2 + rng.IntN(8)
	k := 2 + rng.IntN(5)
	f := randomValues(rng, m, 0.05, 4)
	g, err := dispersal.NewGame(f, k, c)
	if err != nil {
		t.Fatalf("NewGame(%v, %d, %s): %v", f, k, c.Name(), err)
	}
	return g
}

// TestPropertyTheorem4 asserts Theorem 4 on random exclusive-policy games:
// the IFD coincides with the optimal symmetric coverage strategy, so the
// equilibrium's coverage equals the optimum's.
func TestPropertyTheorem4(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2018))
	for trial := 0; trial < 60; trial++ {
		g := randomGame(t, rng, dispersal.Exclusive())
		ifd, _, err := g.IFD()
		if err != nil {
			t.Fatalf("trial %d %s: IFD: %v", trial, g, err)
		}
		opt, optCover, err := g.OptimalCoverage()
		if err != nil {
			t.Fatalf("trial %d %s: OptimalCoverage: %v", trial, g, err)
		}
		ifdCover, err := g.Coverage(ifd)
		if err != nil {
			t.Fatalf("trial %d %s: Coverage: %v", trial, g, err)
		}
		if diff := math.Abs(ifdCover - optCover); diff > 1e-6*math.Max(1, optCover) {
			t.Errorf("trial %d %s: Cover(IFD) = %.12g != optimal coverage %.12g (diff %g)",
				trial, g, ifdCover, optCover, diff)
		}
		for x := range ifd {
			if math.Abs(ifd[x]-opt[x]) > 1e-5 {
				t.Errorf("trial %d %s: IFD and optimum differ at site %d: %.9g vs %.9g",
					trial, g, x+1, ifd[x], opt[x])
				break
			}
		}
	}
}

// TestPropertyCorollary5 asserts Corollary 5 on random exclusive-policy
// games: the symmetric price of anarchy is exactly 1.
func TestPropertyCorollary5(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 2018))
	for trial := 0; trial < 60; trial++ {
		g := randomGame(t, rng, dispersal.Exclusive())
		inst, err := g.SPoA()
		if err != nil {
			t.Fatalf("trial %d %s: SPoA: %v", trial, g, err)
		}
		if math.Abs(inst.Ratio-1) > 1e-6 {
			t.Errorf("trial %d %s: SPoA = %.12g, want 1", trial, g, inst.Ratio)
		}
	}
}

// TestIFDContextHonorsCancellation asserts that the general equilibrium
// solver (non-exclusive policy, so the bisection path runs) stops on an
// already-cancelled context instead of grinding through the numeric work.
func TestIFDContextHonorsCancellation(t *testing.T) {
	f := make(dispersal.Values, 400)
	v := 1.0
	for i := range f {
		f[i] = v
		v *= 0.995
	}
	g, err := dispersal.NewGame(f, 8, dispersal.Sharing())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := g.IFDContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("IFDContext on a cancelled ctx: %v, want context.Canceled", err)
	}
	// And through a memoizing session: the aborted solve is not cached.
	a := g.Analyze()
	if _, _, err := a.IFDContext(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Analysis.IFDContext on a cancelled ctx: %v", err)
	}
	if _, _, err := a.IFD(); err != nil {
		t.Errorf("IFD after a cancelled attempt: %v (cancellation poisoned the session)", err)
	}
}

// TestPropertyCongestedGames asserts, on random TwoPoint and PowerLaw
// games, the two facts that hold for every congestion policy: the IFD is a
// valid probability distribution and the SPoA is at least 1 (the optimum
// can never cover less than an equilibrium).
func TestPropertyCongestedGames(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 2018))
	for trial := 0; trial < 60; trial++ {
		var c dispersal.Congestion
		if trial%2 == 0 {
			// c2 in [-1, 1): aggression through near-constant reward.
			c = dispersal.TwoPoint(-1 + 2*rng.Float64()*0.999)
		} else {
			// beta in [0, 3]: constant through harsh power-law decay.
			c = dispersal.PowerLaw(3 * rng.Float64())
		}
		g := randomGame(t, rng, c)
		ifd, _, err := g.IFD()
		if err != nil {
			t.Fatalf("trial %d %s: IFD: %v", trial, g, err)
		}
		if err := ifd.Validate(); err != nil {
			t.Errorf("trial %d %s: IFD is not a distribution: %v (%v)", trial, g, err, ifd)
		}
		inst, err := g.SPoA()
		if err != nil {
			t.Fatalf("trial %d %s: SPoA: %v", trial, g, err)
		}
		if inst.Ratio < 1-1e-9 {
			t.Errorf("trial %d %s: SPoA = %.12g < 1: an equilibrium out-covered the optimum",
				trial, g, inst.Ratio)
		}
	}
}
