package dispersal

import "math/rand/v2"

// newRand builds a deterministic PCG generator from a single seed word.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x6c62272e07bb0142))
}

// deriveSeed mixes a base seed with an item index into an independent
// per-item seed (splitmix64 finalizer), so sweep items get decorrelated yet
// reproducible random streams.
func deriveSeed(base, index uint64) uint64 {
	z := base + (index+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x6c62272e07bb0142
	}
	return z
}
