package dispersal

import "math/rand/v2"

// newRand builds a deterministic PCG generator from a single seed word.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x6c62272e07bb0142))
}
