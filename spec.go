package dispersal

// Spec round-tripping: a Game can be flattened to the Spec that describes it
// and rebuilt from one. Spec is the single game description shared by the
// Sweep batch layer, the internal/speccodec wire codec, the dispersald
// server and the CLI tools, so every layer of the system names a game the
// same way.

// Spec returns the game's description: its values, player count, congestion
// policy and configured seed. The returned Spec's Values slice is a copy, so
// callers may mutate it freely. FromSpec(g.Spec()) rebuilds an equivalent
// game (the non-seed options revert to defaults unless re-supplied).
func (g *Game) Spec() Spec {
	return Spec{
		Values: g.f.Clone(),
		K:      g.k,
		Policy: g.c,
		Seed:   g.opt.seed,
	}
}

// FromSpec validates and constructs the game a Spec describes. A non-zero
// Spec.Seed is applied as WithSeed before the caller's options, so explicit
// options win; a zero Seed leaves the seed to the options (or the default).
// Spec.Tag is a caller-side label and does not affect the game.
func FromSpec(s Spec, opts ...Option) (*Game, error) {
	if s.Seed != 0 {
		opts = append([]Option{WithSeed(s.Seed)}, opts...)
	}
	return NewGame(s.Values, s.K, s.Policy, opts...)
}
