package dispersal_test

import (
	"testing"

	"dispersal"
)

func TestSpecRoundTrip(t *testing.T) {
	g, err := dispersal.NewGame(dispersal.Values{1, 0.7, 0.4}, 3,
		dispersal.TwoPoint(0.25), dispersal.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	spec := g.Spec()
	if spec.K != 3 || spec.Seed != 99 {
		t.Fatalf("Spec = %+v, want K=3 Seed=99", spec)
	}
	if spec.Policy.Name() != g.Policy().Name() {
		t.Errorf("Spec policy %s, want %s", spec.Policy.Name(), g.Policy().Name())
	}

	// The returned values are a defensive copy.
	spec.Values[0] = 1e9
	if g.Values()[0] != 1 {
		t.Error("mutating Spec.Values corrupted the game")
	}
	spec.Values[0] = 1

	g2, err := dispersal.FromSpec(spec)
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	if g2.String() != g.String() {
		t.Errorf("round trip changed the game: %s vs %s", g2, g)
	}
	p1, nu1, err := g.IFD()
	if err != nil {
		t.Fatal(err)
	}
	p2, nu2, err := g2.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if nu1 != nu2 {
		t.Errorf("round trip changed nu: %v vs %v", nu1, nu2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Errorf("round trip changed the IFD at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestFromSpecOptionPrecedence(t *testing.T) {
	spec := dispersal.Spec{
		Values: dispersal.Values{1, 0.5},
		K:      2,
		Policy: dispersal.Exclusive(),
		Seed:   7,
	}
	// Explicit caller options win over the spec's seed.
	g, err := dispersal.FromSpec(spec, dispersal.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Spec().Seed; got != 11 {
		t.Errorf("seed = %d, want the caller's 11 over the spec's 7", got)
	}
	// Without caller options the spec's seed sticks.
	g2, err := dispersal.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Spec().Seed; got != 7 {
		t.Errorf("seed = %d, want the spec's 7", got)
	}
	// Invalid specs are rejected like NewGame rejects them.
	if _, err := dispersal.FromSpec(dispersal.Spec{Values: dispersal.Values{1}, K: 0, Policy: dispersal.Exclusive()}); err == nil {
		t.Error("FromSpec accepted k = 0")
	}
}
