package dispersal

import (
	"context"
	"fmt"
	"sort"

	"dispersal/internal/site"
	"dispersal/internal/sweep"
)

// Spec describes one game of a Sweep batch: a value function, a player
// count, a congestion policy, and optionally a fixed seed and a caller tag
// carried through to the result.
type Spec struct {
	// Values is the site-value function of this game.
	Values Values
	// K is the player count.
	K int
	// Policy is the congestion policy.
	Policy Congestion
	// Seed, when non-zero, pins this item's seed. When zero the sweep
	// derives a distinct deterministic seed from its base seed (WithSeed)
	// and the item index, so batch results are reproducible yet items do
	// not share random streams.
	Seed uint64
	// Tag is an arbitrary label echoed in the SweepResult.
	Tag string
}

// SweepResult is the outcome of one Sweep item.
type SweepResult[T any] struct {
	// Index is the item's position in the input slice.
	Index int
	// Tag echoes Spec.Tag.
	Tag string
	// Value is eval's result when Err is nil.
	Value T
	// Err records this item's failure: a game-construction error, an eval
	// error, or ctx.Err() for items abandoned after cancellation.
	Err error
}

// Sweep evaluates eval on every spec across a bounded worker pool and
// returns the results in input order. It is the batch layer of the library:
// coverage-probability sweeps, policy grids and landscape scans should go
// through Sweep rather than hand-rolled goroutine loops.
//
// Each item gets its own Game (built with the sweep's options plus the
// item's derived or pinned seed) wrapped in a fresh memoizing Analysis, so
// eval can query the IFD, the optimum and the SPoA without re-solving, and
// items never share mutable state. WithWorkers bounds the pool (default
// GOMAXPROCS); WithSeed sets the base seed for per-item seed derivation.
//
// Items are dispatched in landscape-locality order rather than input order:
// within each (site count, player count, policy) group a greedy
// nearest-neighbour chain over the log-quantized value buckets
// (site.LogBuckets, the warm-cache grid) puts each item next to the
// landscape it most resembles. On a sequential sweep — WithWorkers(1), or
// any sweep with WithWarmChaining(true) — consecutive chain items are
// additionally linked the way evolved games are, so every solve warm-seeds
// the next item's and a parameter grid solves like one trajectory instead
// of n isolated games. Warm-seeded items answer within solver tolerance of
// a cold solve (every seed is verified, with a cold fallback); parallel
// sweeps without WithWarmChaining(true) skip the linking so their results
// stay bit-identical run to run. Results are always returned in input
// order.
//
// Item failures do not abort the batch: they are recorded per result. Only
// a cancelled or expired ctx stops the sweep early, in which case Sweep
// returns ctx.Err() alongside the results completed so far (abandoned items
// carry ctx.Err() in their Err field). Sweep never leaks goroutines: it
// returns only after every worker has exited.
func Sweep[T any](ctx context.Context, specs []Spec, eval func(ctx context.Context, a *Analysis) (T, error), opts ...Option) ([]SweepResult[T], error) {
	o := defaultGameOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}

	// Build every item's game up front (construction errors are per-item
	// results, not batch failures), so the chain order can link games
	// before any of them solves.
	games := make([]*Game, len(specs))
	buildErrs := make([]error, len(specs))
	for i, s := range specs {
		seed := s.Seed
		if seed == 0 {
			seed = deriveSeed(o.seed, uint64(i))
		}
		g, err := FromSpec(Spec{Values: s.Values, K: s.K, Policy: s.Policy},
			append(append([]Option{}, opts...), WithSeed(seed))...)
		if err != nil {
			buildErrs[i] = err
			continue
		}
		games[i] = g
	}

	order := chainOrder(specs, games)
	if o.warmChain == 1 || (o.warmChain == 0 && o.workers == 1) {
		linkChains(specs, games, order)
	}

	values, errs, err := sweep.Collect(ctx, order, o.workers,
		func(ctx context.Context, _ int, idx int) (T, error) {
			var zero T
			if buildErrs[idx] != nil {
				return zero, buildErrs[idx]
			}
			return eval(ctx, games[idx].Analyze())
		})

	out := make([]SweepResult[T], len(specs))
	for pos, idx := range order {
		out[idx] = SweepResult[T]{Index: idx, Tag: specs[idx].Tag, Value: values[pos], Err: errs[pos]}
	}
	return out, err
}

// chainGroupCap bounds the group size the O(n^2) greedy nearest-neighbour
// chain is applied to; larger groups fall back to a lexicographic sort of
// their bucket vectors (O(n log n)), which still clusters near landscapes.
const chainGroupCap = 512

// chainOrder returns the dispatch permutation: items grouped by game shape
// (site count, player count, policy identity), each group ordered so that
// consecutive items have nearby landscapes. Items whose game failed to
// build (or whose values defeat bucketing) keep their relative positions at
// the end of the order.
func chainOrder(specs []Spec, games []*Game) []int {
	groups := make(map[string][]chainMember)
	keys := make([]string, 0, 8)
	var rest []int
	for i := range specs {
		if games[i] == nil {
			rest = append(rest, i)
			continue
		}
		b, err := site.LogBuckets(specs[i].Values, site.LocalityGrid)
		if err != nil {
			rest = append(rest, i)
			continue
		}
		key := groupKey(specs[i])
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
		}
		groups[key] = append(groups[key], chainMember{idx: i, buckets: b})
	}

	order := make([]int, 0, len(specs))
	for _, key := range keys { // first-appearance order keeps runs stable
		ms := groups[key]
		switch {
		case len(ms) <= 2:
			// Nothing to order.
		case len(ms) > chainGroupCap:
			sort.SliceStable(ms, func(a, b int) bool {
				return bucketLess(ms[a].buckets, ms[b].buckets)
			})
		default:
			ms = greedyChain(ms)
		}
		for _, m := range ms {
			order = append(order, m.idx)
		}
	}
	return append(order, rest...)
}

// groupKey identifies the items that can seed each other: same site count,
// player count and (identically parameterized) policy — exactly the
// solver-state compatibility gate (solve.State.CompatibleEq).
func groupKey(s Spec) string {
	name := ""
	if s.Policy != nil {
		name = s.Policy.Name()
	}
	return fmt.Sprintf("%d/%d/%s", len(s.Values), s.K, name)
}

// bucketLess orders bucket vectors lexicographically.
func bucketLess(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// bucketDist is the L1 distance between two same-length bucket vectors —
// the total relative landscape drift in grid units, the quantity the warm
// brackets scale with.
func bucketDist(a, b []int64) int64 {
	var d int64
	for i := range a {
		if a[i] > b[i] {
			d += a[i] - b[i]
		} else {
			d += b[i] - a[i]
		}
	}
	return d
}

// chainMember is one chainable sweep item: its input index and its
// log-quantized landscape.
type chainMember struct {
	idx     int
	buckets []int64
}

// greedyChain orders one group as a greedy nearest-neighbour walk: start at
// the first item, repeatedly hop to the unvisited item with the smallest
// bucket distance (ties to the lower input index, for determinism). The
// classic nearest-neighbour pathologies do not matter here — a single long
// hop costs one cold-ish solve, not correctness.
func greedyChain(ms []chainMember) []chainMember {
	out := make([]chainMember, 0, len(ms))
	used := make([]bool, len(ms))
	cur := 0
	used[0] = true
	out = append(out, ms[0])
	for len(out) < len(ms) {
		best, bestDist := -1, int64(0)
		for j := range ms {
			if used[j] {
				continue
			}
			d := bucketDist(ms[cur].buckets, ms[j].buckets)
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
		used[best] = true
		out = append(out, ms[best])
		cur = best
	}
	return out
}

// linkChains links consecutive same-group items of the dispatch order the
// way Evolve links trajectory frames: each game's parent is its chain
// predecessor, so its first solve seeds from the nearest already-solved
// landscape up the chain.
func linkChains(specs []Spec, games []*Game, order []int) {
	for pos := 1; pos < len(order); pos++ {
		prev, cur := order[pos-1], order[pos]
		if games[prev] == nil || games[cur] == nil {
			continue
		}
		if groupKey(specs[prev]) != groupKey(specs[cur]) {
			continue
		}
		games[cur].parent.Store(games[prev])
	}
}
