package dispersal

import (
	"context"

	"dispersal/internal/sweep"
)

// Spec describes one game of a Sweep batch: a value function, a player
// count, a congestion policy, and optionally a fixed seed and a caller tag
// carried through to the result.
type Spec struct {
	// Values is the site-value function of this game.
	Values Values
	// K is the player count.
	K int
	// Policy is the congestion policy.
	Policy Congestion
	// Seed, when non-zero, pins this item's seed. When zero the sweep
	// derives a distinct deterministic seed from its base seed (WithSeed)
	// and the item index, so batch results are reproducible yet items do
	// not share random streams.
	Seed uint64
	// Tag is an arbitrary label echoed in the SweepResult.
	Tag string
}

// SweepResult is the outcome of one Sweep item.
type SweepResult[T any] struct {
	// Index is the item's position in the input slice.
	Index int
	// Tag echoes Spec.Tag.
	Tag string
	// Value is eval's result when Err is nil.
	Value T
	// Err records this item's failure: a game-construction error, an eval
	// error, or ctx.Err() for items abandoned after cancellation.
	Err error
}

// Sweep evaluates eval on every spec across a bounded worker pool and
// returns the results in input order. It is the batch layer of the library:
// coverage-probability sweeps, policy grids and landscape scans should go
// through Sweep rather than hand-rolled goroutine loops.
//
// Each item gets its own Game (built with the sweep's options plus the
// item's derived or pinned seed) wrapped in a fresh memoizing Analysis, so
// eval can query the IFD, the optimum and the SPoA without re-solving, and
// items never share mutable state. WithWorkers bounds the pool (default
// GOMAXPROCS); WithSeed sets the base seed for per-item seed derivation.
//
// Item failures do not abort the batch: they are recorded per result. Only
// a cancelled or expired ctx stops the sweep early, in which case Sweep
// returns ctx.Err() alongside the results completed so far (abandoned items
// carry ctx.Err() in their Err field). Sweep never leaks goroutines: it
// returns only after every worker has exited.
func Sweep[T any](ctx context.Context, specs []Spec, eval func(ctx context.Context, a *Analysis) (T, error), opts ...Option) ([]SweepResult[T], error) {
	o := defaultGameOptions()
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	values, errs, err := sweep.Collect(ctx, specs, o.workers,
		func(ctx context.Context, i int, s Spec) (T, error) {
			seed := s.Seed
			if seed == 0 {
				seed = deriveSeed(o.seed, uint64(i))
			}
			var zero T
			g, gerr := FromSpec(Spec{Values: s.Values, K: s.K, Policy: s.Policy},
				append(append([]Option{}, opts...), WithSeed(seed))...)
			if gerr != nil {
				return zero, gerr
			}
			return eval(ctx, g.Analyze())
		})
	out := make([]SweepResult[T], len(specs))
	for i := range specs {
		out[i] = SweepResult[T]{Index: i, Tag: specs[i].Tag, Value: values[i], Err: errs[i]}
	}
	return out, err
}
