package dispersal

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dispersal/internal/site"
)

func sweepSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{
			Values: site.Geometric(6+i%5, 1, 0.8),
			K:      2 + i%4,
			Policy: Sharing(),
			Tag:    "g",
		}
	}
	return specs
}

func TestSweepMatchesSequentialAnalysis(t *testing.T) {
	specs := sweepSpecs(12)
	res, err := Sweep(context.Background(), specs,
		func(_ context.Context, a *Analysis) (float64, error) {
			inst, err := a.SPoA()
			return inst.Ratio, err
		}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results, want %d", len(res), len(specs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
		if r.Index != i || r.Tag != "g" {
			t.Fatalf("item %d metadata wrong: %+v", i, r)
		}
		g := MustGame(specs[i].Values, specs[i].K, specs[i].Policy)
		inst, err := g.SPoA()
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != inst.Ratio {
			t.Fatalf("item %d: sweep ratio %v != direct ratio %v", i, r.Value, inst.Ratio)
		}
	}
}

func TestSweepPerItemSeedsAreDistinctAndReproducible(t *testing.T) {
	specs := sweepSpecs(6)
	run := func() []SweepResult[float64] {
		res, err := Sweep(context.Background(), specs,
			func(ctx context.Context, a *Analysis) (float64, error) {
				p, _, err := a.IFD()
				if err != nil {
					return 0, err
				}
				sim, err := a.Game().SimulateContext(ctx, p, 2000)
				if err != nil {
					return 0, err
				}
				return sim.Coverage.Mean, nil
			}, WithSeed(7), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("item %d failed: %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].Value != second[i].Value {
			t.Fatalf("item %d not reproducible: %v vs %v", i, first[i].Value, second[i].Value)
		}
	}
	// Items 0 and 5 share (M, k, policy) but derived seeds must differ, so
	// their Monte-Carlo streams (and means, at finite rounds) should too.
	if specs[0].Values.M() == specs[5].Values.M() && first[0].Value == first[5].Value {
		t.Fatalf("identical games with derived seeds produced identical streams: %v", first[0].Value)
	}
}

func TestSweepRecordsPerItemErrors(t *testing.T) {
	specs := sweepSpecs(4)
	specs[2].K = 0 // invalid game
	res, err := Sweep(context.Background(), specs,
		func(_ context.Context, a *Analysis) (int, error) { return a.Game().Players(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i == 2 {
			if r.Err == nil {
				t.Fatal("invalid spec did not report an error")
			}
			continue
		}
		if r.Err != nil || r.Value != specs[i].K {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
}

// TestSweepCancellationStopsEarlyWithoutLeaks is the acceptance criterion:
// a cancelled context stops the sweep early and no goroutines leak (run
// with -race).
func TestSweepCancellationStopsEarlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	specs := sweepSpecs(500)
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Sweep(ctx, specs, func(ctx context.Context, a *Analysis) (int, error) {
			ran.Add(1)
			select { // simulate slow per-item work that honours ctx
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			return 0, nil
		}, WithWorkers(4))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sweep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sweep did not return after cancellation")
	}
	if n := ran.Load(); n == int64(len(specs)) {
		t.Fatal("cancellation did not stop the sweep early")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSweepInvalidOption(t *testing.T) {
	_, err := Sweep(context.Background(), sweepSpecs(1),
		func(_ context.Context, a *Analysis) (int, error) { return 0, nil },
		WithWorkers(-1))
	if !errors.Is(err, ErrOption) {
		t.Fatalf("err = %v, want ErrOption", err)
	}
}
