package dispersal

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dispersal/internal/site"
)

func sweepSpecs(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{
			Values: site.Geometric(6+i%5, 1, 0.8),
			K:      2 + i%4,
			Policy: Sharing(),
			Tag:    "g",
		}
	}
	return specs
}

func TestSweepMatchesSequentialAnalysis(t *testing.T) {
	specs := sweepSpecs(12)
	res, err := Sweep(context.Background(), specs,
		func(_ context.Context, a *Analysis) (float64, error) {
			inst, err := a.SPoA()
			return inst.Ratio, err
		}, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(specs) {
		t.Fatalf("got %d results, want %d", len(res), len(specs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d failed: %v", i, r.Err)
		}
		if r.Index != i || r.Tag != "g" {
			t.Fatalf("item %d metadata wrong: %+v", i, r)
		}
		g := MustGame(specs[i].Values, specs[i].K, specs[i].Policy)
		inst, err := g.SPoA()
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != inst.Ratio {
			t.Fatalf("item %d: sweep ratio %v != direct ratio %v", i, r.Value, inst.Ratio)
		}
	}
}

func TestSweepPerItemSeedsAreDistinctAndReproducible(t *testing.T) {
	specs := sweepSpecs(6)
	run := func() []SweepResult[float64] {
		res, err := Sweep(context.Background(), specs,
			func(ctx context.Context, a *Analysis) (float64, error) {
				p, _, err := a.IFD()
				if err != nil {
					return 0, err
				}
				sim, err := a.Game().SimulateContext(ctx, p, 2000)
				if err != nil {
					return 0, err
				}
				return sim.Coverage.Mean, nil
			}, WithSeed(7), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("item %d failed: %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].Value != second[i].Value {
			t.Fatalf("item %d not reproducible: %v vs %v", i, first[i].Value, second[i].Value)
		}
	}
	// Items 0 and 5 share (M, k, policy) but derived seeds must differ, so
	// their Monte-Carlo streams (and means, at finite rounds) should too.
	if specs[0].Values.M() == specs[5].Values.M() && first[0].Value == first[5].Value {
		t.Fatalf("identical games with derived seeds produced identical streams: %v", first[0].Value)
	}
}

func TestSweepRecordsPerItemErrors(t *testing.T) {
	specs := sweepSpecs(4)
	specs[2].K = 0 // invalid game
	res, err := Sweep(context.Background(), specs,
		func(_ context.Context, a *Analysis) (int, error) { return a.Game().Players(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if i == 2 {
			if r.Err == nil {
				t.Fatal("invalid spec did not report an error")
			}
			continue
		}
		if r.Err != nil || r.Value != specs[i].K {
			t.Fatalf("item %d: %+v", i, r)
		}
	}
}

// TestSweepCancellationStopsEarlyWithoutLeaks is the acceptance criterion:
// a cancelled context stops the sweep early and no goroutines leak (run
// with -race).
func TestSweepCancellationStopsEarlyWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	specs := sweepSpecs(500)
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		_, err := Sweep(ctx, specs, func(ctx context.Context, a *Analysis) (int, error) {
			ran.Add(1)
			select { // simulate slow per-item work that honours ctx
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			return 0, nil
		}, WithWorkers(4))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Sweep returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sweep did not return after cancellation")
	}
	if n := ran.Load(); n == int64(len(specs)) {
		t.Fatal("cancellation did not stop the sweep early")
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestSweepInvalidOption(t *testing.T) {
	_, err := Sweep(context.Background(), sweepSpecs(1),
		func(_ context.Context, a *Analysis) (int, error) { return 0, nil },
		WithWorkers(-1))
	if !errors.Is(err, ErrOption) {
		t.Fatalf("err = %v, want ErrOption", err)
	}
}

// driftGridSpecs builds a same-shape grid of drifting landscapes — the
// workload the locality chain exists for — deliberately shuffled so input
// order is NOT locality order.
func driftGridSpecs(n int) []Spec {
	base := site.Geometric(16, 1, 0.85)
	specs := make([]Spec, n)
	for i := range specs {
		// A deterministic shuffle of the drift sequence.
		t := (i * 7) % n
		specs[i] = Spec{
			Values: Values(site.Drifted(base, t, 0.04)),
			K:      12,
			Policy: Sharing(),
		}
	}
	return specs
}

// TestSweepChainOrderVisitsNeighbours: the dispatch order must (a) be a
// permutation, (b) keep different game shapes in separate runs, and (c)
// within the drift grid, hop shorter distances than the shuffled input
// order does.
func TestSweepChainOrderVisitsNeighbours(t *testing.T) {
	specs := driftGridSpecs(24)
	// Mix in a second group with a different player count.
	for i := 0; i < 6; i++ {
		s := specs[i]
		s.K = 3
		specs = append(specs, s)
	}
	games := make([]*Game, len(specs))
	for i, s := range specs {
		games[i] = MustGame(s.Values, s.K, s.Policy)
	}
	order := chainOrder(specs, games)
	seen := make([]bool, len(specs))
	for _, idx := range order {
		if idx < 0 || idx >= len(specs) || seen[idx] {
			t.Fatalf("order is not a permutation: %v", order)
		}
		seen[idx] = true
	}

	hops := func(idxs []int) (total int64, switches int) {
		var prev []int64
		prevKey := ""
		for _, idx := range idxs {
			b, err := site.LogBuckets(specs[idx].Values, site.LocalityGrid)
			if err != nil {
				t.Fatal(err)
			}
			key := groupKey(specs[idx])
			if prev != nil && key == prevKey {
				total += bucketDist(prev, b)
			} else if prevKey != "" {
				switches++
			}
			prev, prevKey = b, key
		}
		return total, switches
	}
	input := make([]int, len(specs))
	for i := range input {
		input[i] = i
	}
	inputDist, _ := hops(input)
	chainDist, switches := hops(order)
	if chainDist >= inputDist {
		t.Fatalf("chain order hops %d buckets, input order %d — no improvement", chainDist, inputDist)
	}
	if switches != 1 {
		t.Fatalf("groups interleaved %d times in the order, want contiguous groups", switches)
	}
}

// TestSweepSequentialChainWarmSeedsAndMatchesCold: on a sequential sweep
// the chain engages by default; most items must solve warm, and every
// result must agree with the unchained sweep to solver tolerance.
func TestSweepSequentialChainWarmSeedsAndMatchesCold(t *testing.T) {
	specs := driftGridSpecs(16)
	type item struct {
		nu   float64
		warm bool
	}
	eval := func(_ context.Context, a *Analysis) (item, error) {
		_, nu, err := a.IFD()
		if err != nil {
			return item{}, err
		}
		return item{nu: nu, warm: a.Game().Warmed()}, nil
	}
	chained, err := Sweep(context.Background(), specs, eval, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(context.Background(), specs, eval, WithWorkers(1), WithWarmChaining(false))
	if err != nil {
		t.Fatal(err)
	}
	warmed := 0
	for i := range specs {
		if chained[i].Err != nil || cold[i].Err != nil {
			t.Fatalf("item %d failed: %v / %v", i, chained[i].Err, cold[i].Err)
		}
		if chained[i].Value.warm {
			warmed++
		}
		if cold[i].Value.warm {
			t.Fatalf("item %d solved warm with chaining disabled", i)
		}
		d := chained[i].Value.nu - cold[i].Value.nu
		if d < 0 {
			d = -d
		}
		if d > 1e-9*(1+cold[i].Value.nu) {
			t.Fatalf("item %d diverged: chained nu %v vs cold nu %v", i, chained[i].Value.nu, cold[i].Value.nu)
		}
	}
	if warmed < len(specs)/2 {
		t.Fatalf("only %d/%d items warm-seeded along the chain", warmed, len(specs))
	}
}

// TestSweepParallelDefaultStaysColdAndExact: without WithWarmChaining(true)
// a parallel sweep must not link games — its results stay bit-identical to
// the unchained ones.
func TestSweepParallelDefaultStaysColdAndExact(t *testing.T) {
	specs := driftGridSpecs(10)
	eval := func(_ context.Context, a *Analysis) (bool, error) {
		if _, _, err := a.IFD(); err != nil {
			return false, err
		}
		return a.Game().Warmed(), nil
	}
	res, err := Sweep(context.Background(), specs, eval, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Value {
			t.Fatalf("item %d warm-seeded on a default parallel sweep", i)
		}
	}
}

// TestSweepForcedChainingOnParallelSweeps: WithWarmChaining(true) links
// games even with workers > 1; results stay within solver tolerance of the
// cold sweep (which items actually seed is scheduling-dependent).
func TestSweepForcedChainingOnParallelSweeps(t *testing.T) {
	specs := driftGridSpecs(16)
	eval := func(_ context.Context, a *Analysis) (float64, error) {
		_, nu, err := a.IFD()
		return nu, err
	}
	forced, err := Sweep(context.Background(), specs, eval, WithWorkers(4), WithWarmChaining(true))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Sweep(context.Background(), specs, eval, WithWorkers(4), WithWarmChaining(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if forced[i].Err != nil || cold[i].Err != nil {
			t.Fatalf("item %d failed: %v / %v", i, forced[i].Err, cold[i].Err)
		}
		d := forced[i].Value - cold[i].Value
		if d < 0 {
			d = -d
		}
		if d > 1e-9*(1+cold[i].Value) {
			t.Fatalf("item %d diverged: %v vs %v", i, forced[i].Value, cold[i].Value)
		}
	}
}
