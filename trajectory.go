package dispersal

// Time-varying landscapes. Real clients re-query as site values drift —
// seasonal depletion, foraging pressure, shifting demand — and solving each
// perturbed landscape from scratch wastes the bisection bracket and per-site
// inversions an adjacent solve already established. Evolve and Trajectory
// chain games over a drifting landscape so every equilibrium solve
// warm-starts from the previous one (internal/ifd.SolveWarm), falling back
// to a cold solve whenever the seeded bracket fails to capture the new
// equilibrium.

import (
	"context"
	"fmt"
)

// Evolve returns a new game whose site values are the receiver's values
// plus delta (one entry per site), with the same player count, congestion
// policy and options. The evolved game's first equilibrium solve
// warm-starts from the receiver's most recent solve; see EvolveTo for the
// absolute-values form and the chaining rules.
//
// The drifted landscape must still satisfy the paper's conventions — sorted
// non-increasing, strictly positive — or Evolve fails.
func (g *Game) Evolve(delta Values) (*Game, error) {
	if len(delta) != len(g.f) {
		return nil, fmt.Errorf("dispersal: delta has %d entries for %d sites", len(delta), len(g.f))
	}
	f := g.f.Clone()
	for i := range f {
		f[i] += delta[i]
	}
	return g.EvolveTo(f)
}

// EvolveTo returns a new game on the landscape f with the receiver's player
// count, congestion policy and options, chained to the receiver: its first
// equilibrium solve seeds the bisection bracket and the per-site inversions
// from the nearest solved game up the evolution chain, which on small
// drifts is several times faster than a cold solve and falls back to the
// cold solver whenever the seeded bracket misses. The receiver is not
// modified and remains usable.
func (g *Game) EvolveTo(f Values) (*Game, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	child := &Game{f: f.Clone(), k: g.k, c: g.c, opt: g.opt}
	child.parent.Store(g)
	return child, nil
}

// Trajectory solves the game's policy and player count across a sequence of
// landscape frames, warm-starting each step's equilibrium solve from the
// previous step. It returns one memoizing Analysis per frame with the
// equilibrium already solved; every other quantity (SPoA, coverage optimum,
// welfare optimum) stays lazy, so callers pay only for what they query.
//
// Frames are absolute landscapes, each of which must be valid on its own
// (sorted non-increasing, strictly positive); they need not keep the
// receiver's site count, though a frame that changes it solves cold. On an
// invalid frame or a cancelled ctx, Trajectory returns the analyses
// completed so far together with an error naming the failing frame.
func (g *Game) Trajectory(ctx context.Context, frames []Values) ([]*Analysis, error) {
	out := make([]*Analysis, 0, len(frames))
	cur := g
	for i, f := range frames {
		next, err := cur.EvolveTo(f)
		if err != nil {
			return out, fmt.Errorf("dispersal: trajectory frame %d: %w", i, err)
		}
		a := next.Analyze()
		if _, _, err := a.IFDContext(ctx); err != nil {
			return out, fmt.Errorf("dispersal: trajectory frame %d: %w", i, err)
		}
		out = append(out, a)
		cur = next
	}
	return out, nil
}
