package dispersal_test

import (
	"context"
	"math"
	"testing"

	"dispersal"
	"dispersal/internal/site"
)

// driftFrames builds a deterministic drifting landscape sequence from the
// standard drift model (site.Drifted over a geometric base).
func driftFrames(m, n int, amp float64) []dispersal.Values {
	base := site.Geometric(m, 1, 0.85)
	frames := make([]dispersal.Values, n)
	for t := range frames {
		frames[t] = dispersal.Values(site.Drifted(base, t, amp))
	}
	return frames
}

// TestTrajectoryMatchesColdSolves is the root-level warm/cold equivalence
// check: every frame of a warm trajectory must agree with an independent
// cold solve of the same landscape.
func TestTrajectoryMatchesColdSolves(t *testing.T) {
	frames := driftFrames(10, 16, 0.02)
	g := dispersal.MustGame(frames[0], 5, dispersal.Sharing())
	analyses, err := g.Trajectory(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(analyses) != len(frames) {
		t.Fatalf("got %d analyses for %d frames", len(analyses), len(frames))
	}
	warmed := 0
	for i, a := range analyses {
		p, nu, err := a.IFD()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		cold := dispersal.MustGame(frames[i], 5, dispersal.Sharing())
		pc, nuC, err := cold.IFD()
		if err != nil {
			t.Fatalf("frame %d cold: %v", i, err)
		}
		if d := math.Abs(nu - nuC); d > 1e-9*(1+math.Abs(nuC)) {
			t.Fatalf("frame %d: nu %v vs cold %v", i, nu, nuC)
		}
		if d := p.LInf(pc); d > 1e-6 {
			t.Fatalf("frame %d: strategy LInf %g", i, d)
		}
		if a.Game().Warmed() {
			warmed++
		}
	}
	if warmed < len(frames)-2 {
		t.Fatalf("only %d/%d frames warm-started", warmed, len(frames))
	}
	// The trajectory pre-solves the IFD: querying it must not re-solve.
	if n := analyses[0].Solves(); n != 1 {
		t.Fatalf("frame 0 session did %d solves, want the 1 trajectory solve", n)
	}
}

// TestEvolveChainsWarmState checks the step-wise API: an evolved game's
// solve warm-starts from its parent, and SeedWarm substitutes for a local
// solve.
func TestEvolveChainsWarmState(t *testing.T) {
	f := dispersal.Values{1, 0.8, 0.6, 0.4}
	g := dispersal.MustGame(f, 4, dispersal.PowerLaw(2))
	if g.Warmed() {
		t.Fatal("unsolved game cannot report a warm solve")
	}
	if _, _, err := g.IFD(); err != nil {
		t.Fatal(err)
	}
	if g.Warmed() {
		t.Fatal("a root game must solve cold")
	}

	delta := dispersal.Values{0.01, -0.01, 0.005, 0}
	g2, err := g.Evolve(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Values()[0]; math.Abs(got-1.01) > 1e-15 {
		t.Fatalf("evolved f(1) = %v, want 1.01", got)
	}
	if _, _, err := g2.IFD(); err != nil {
		t.Fatal(err)
	}
	if !g2.Warmed() {
		t.Fatal("evolved game should warm-start from its solved parent")
	}

	// SeedWarm: a never-solved game seeded from known results warms its
	// children.
	h := dispersal.MustGame(f, 4, dispersal.PowerLaw(2))
	p, nu, _ := g.IFD()
	h.SeedWarm(p, nu)
	h2, err := h.Evolve(delta)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := h2.IFD(); err != nil {
		t.Fatal(err)
	}
	if !h2.Warmed() {
		t.Fatal("SeedWarm should enable warm-starting in evolved games")
	}
}

// TestEvolveValidation checks the failure modes: dimension mismatch and
// landscapes that violate the value conventions.
func TestEvolveValidation(t *testing.T) {
	g := dispersal.MustGame(dispersal.Values{1, 0.5}, 2, dispersal.Exclusive())
	if _, err := g.Evolve(dispersal.Values{0.1}); err == nil {
		t.Fatal("dimension mismatch must fail")
	}
	if _, err := g.Evolve(dispersal.Values{-2, 0}); err == nil {
		t.Fatal("a drift below zero must fail validation")
	}
	if _, err := g.Evolve(dispersal.Values{-0.6, 0}); err == nil {
		t.Fatal("a drift breaking the sort order must fail validation")
	}
	if _, err := g.EvolveTo(dispersal.Values{0.5, 1}); err == nil {
		t.Fatal("an unsorted landscape must fail validation")
	}
}

// TestTrajectoryCancellation verifies a cancelled context stops the
// trajectory with partial results.
func TestTrajectoryCancellation(t *testing.T) {
	frames := driftFrames(12, 64, 0.01)
	g := dispersal.MustGame(frames[0], 6, dispersal.Sharing())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	analyses, err := g.Trajectory(ctx, frames)
	if err == nil {
		t.Fatal("cancelled trajectory must return an error")
	}
	if len(analyses) == len(frames) {
		t.Fatal("cancelled trajectory should not complete every frame")
	}
}

// TestTrajectoryExclusivePolicy: the exclusive policy answers in closed
// form, but its support boundary W is tracked incrementally along the
// chain, so frames after the first report a warm solve — and every frame
// must match an independent cold closed-form solve.
func TestTrajectoryExclusivePolicy(t *testing.T) {
	frames := driftFrames(8, 8, 0.02)
	g := dispersal.MustGame(frames[0], 3, dispersal.Exclusive())
	analyses, err := g.Trajectory(context.Background(), frames)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range analyses {
		p, nu, err := a.IFD()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if i > 0 && !a.Game().Warmed() {
			t.Fatalf("frame %d: incremental sigma* tracking did not engage", i)
		}
		cold := dispersal.MustGame(frames[i], 3, dispersal.Exclusive())
		coldP, coldNu, err := cold.IFD()
		if err != nil {
			t.Fatalf("frame %d cold: %v", i, err)
		}
		if d := p.LInf(coldP); d > 1e-9 {
			t.Fatalf("frame %d: warm sigma* diverged from cold by %g", i, d)
		}
		if d := math.Abs(nu-coldNu) / (1 + math.Abs(coldNu)); d > 1e-9 {
			t.Fatalf("frame %d: warm nu diverged from cold by %g", i, d)
		}
	}
}
