package dispersal_test

// Tests of the solver-core state threading on the public Game API:
// StateSnapshot / SeedState (the warm-cache hooks) and the accumulation of
// parts across the per-game solvers.

import (
	"context"
	"math"
	"testing"

	"dispersal"
	"dispersal/internal/site"
)

// TestStateSnapshotAccumulatesParts: an IFD records the equilibrium part, a
// SPoA adds the coverage optimum, and the merged state carries both.
func TestStateSnapshotAccumulatesParts(t *testing.T) {
	g := dispersal.MustGame(site.Geometric(10, 1, 0.8), 5, dispersal.Sharing())
	if g.StateSnapshot() != nil {
		t.Fatal("fresh game already has state")
	}
	if _, _, err := g.IFD(); err != nil {
		t.Fatal(err)
	}
	st := g.StateSnapshot()
	if !st.HasEq() || st.HasOpt() {
		t.Fatalf("after IFD: eq=%v opt=%v", st.HasEq(), st.HasOpt())
	}
	if _, err := g.SPoA(); err != nil {
		t.Fatal(err)
	}
	st = g.StateSnapshot()
	if !st.HasEq() || !st.HasOpt() {
		t.Fatalf("after SPoA: eq=%v opt=%v", st.HasEq(), st.HasOpt())
	}
	// The exclusive structure accumulates too.
	if _, _, _, err := g.SigmaStar(); err != nil {
		t.Fatal(err)
	}
	if st = g.StateSnapshot(); !st.HasSigma() || !st.HasEq() || !st.HasOpt() {
		t.Fatalf("after SigmaStar: eq=%v opt=%v sigma=%v", st.HasEq(), st.HasOpt(), st.HasSigma())
	}
}

// TestSeedStateWarmsIsolatedGame: a state snapshot from one game seeds a
// freshly constructed (NewGame, not Evolve) game on a nearby landscape —
// the cross-request scenario behind the server's warm cache — and the
// seeded solve is warm yet matches a cold solve.
func TestSeedStateWarmsIsolatedGame(t *testing.T) {
	base := site.Values(site.Geometric(12, 1, 0.85))
	k := 6
	donor := dispersal.MustGame(base, k, dispersal.Sharing())
	if _, err := donor.SPoA(); err != nil {
		t.Fatal(err)
	}

	near := base.Clone()
	for i := range near {
		near[i] *= 1 + 0.01*float64(i%3)
	}
	near = site.Values(site.Sorted(near))

	cold := dispersal.MustGame(near, k, dispersal.Sharing())
	coldP, coldNu, err := cold.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if cold.Warmed() {
		t.Fatal("unseeded NewGame solve reported warm")
	}

	seeded := dispersal.MustGame(near, k, dispersal.Sharing())
	seeded.SeedState(donor.StateSnapshot())
	p, nu, err := seeded.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if !seeded.Warmed() {
		t.Fatal("seeded solve did not take the warm path")
	}
	if d := p.LInf(coldP); d > 1e-6 {
		t.Fatalf("seeded solve diverged from cold by %g", d)
	}
	if d := math.Abs(nu-coldNu) / (1 + math.Abs(coldNu)); d > 1e-9 {
		t.Fatalf("seeded nu diverged from cold by %g", d)
	}
}

// TestSeedStateFarLandscapeFallsBackCold: a seed from a radically different
// landscape must not corrupt the solve — the bracket verification falls
// back cold and the answer matches an unseeded game.
func TestSeedStateFarLandscapeFallsBackCold(t *testing.T) {
	k := 5
	far := site.Values{500, 400, 300, 200, 100, 50}
	donor := dispersal.MustGame(far, k, dispersal.Sharing())
	if _, _, err := donor.IFD(); err != nil {
		t.Fatal(err)
	}

	near := site.Values(site.Geometric(6, 1, 0.6))
	cold := dispersal.MustGame(near, k, dispersal.Sharing())
	coldP, coldNu, err := cold.IFD()
	if err != nil {
		t.Fatal(err)
	}

	seeded := dispersal.MustGame(near, k, dispersal.Sharing())
	seeded.SeedState(donor.StateSnapshot())
	p, nu, err := seeded.IFD()
	if err != nil {
		t.Fatal(err)
	}
	if d := p.LInf(coldP); d > 1e-6 {
		t.Fatalf("far-seeded solve diverged from cold by %g", d)
	}
	if d := math.Abs(nu-coldNu) / (1 + math.Abs(coldNu)); d > 1e-9 {
		t.Fatalf("far-seeded nu diverged from cold by %g", d)
	}
}

// TestSeedStateCrossPolicyOptimumReuse: the optimum part is policy-free, so
// a state recorded under one policy warms another policy's SPoA
// water-filling (the equilibrium part stays policy-bound and solves cold).
func TestSeedStateCrossPolicyOptimumReuse(t *testing.T) {
	ctx := context.Background()
	f := site.Values(site.Geometric(10, 1, 0.8))
	k := 4
	donor := dispersal.MustGame(f, k, dispersal.Sharing())
	if _, err := donor.SPoA(); err != nil {
		t.Fatal(err)
	}
	st := donor.StateSnapshot()
	if !st.HasOpt() {
		t.Fatal("donor state has no optimum part")
	}

	g := dispersal.MustGame(f, k, dispersal.PowerLaw(1.2))
	g.SeedState(st)
	inst, err := g.SPoAContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coldInst, err := dispersal.MustGame(f, k, dispersal.PowerLaw(1.2)).SPoAContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(inst.Ratio-coldInst.Ratio) / (1 + coldInst.Ratio); d > 1e-9 {
		t.Fatalf("cross-policy seeded SPoA diverged by %g", d)
	}
}

// TestSeedStateNilIsIgnored guards the nil path.
func TestSeedStateNilIsIgnored(t *testing.T) {
	g := dispersal.MustGame(site.Values{1, 0.5}, 2, dispersal.Sharing())
	g.SeedState(nil)
	if _, _, err := g.IFD(); err != nil {
		t.Fatal(err)
	}
	if g.Warmed() {
		t.Fatal("nil seed produced a warm solve")
	}
}

// TestChainThreadsOptimumWarmStart pins the cross-frame optimum threading:
// in the server's per-frame pipeline (IFD then SPoA on each evolved game),
// every frame after the first must warm-start its coverage water-filling
// from the previous frame's optimum — the chain release after the IFD must
// not strand the inherited optimum part.
func TestChainThreadsOptimumWarmStart(t *testing.T) {
	ctx := context.Background()
	frames := driftFrames(10, 6, 0.01)
	cur := dispersal.MustGame(frames[0], 5, dispersal.Sharing())
	for i, f := range frames {
		next, err := cur.EvolveTo(f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		a := next.Analyze()
		if _, _, err := a.IFDContext(ctx); err != nil {
			t.Fatalf("frame %d ifd: %v", i, err)
		}
		if _, err := a.SPoAContext(ctx); err != nil {
			t.Fatalf("frame %d spoa: %v", i, err)
		}
		st := next.StateSnapshot()
		if !st.HasEq() || !st.HasOpt() {
			t.Fatalf("frame %d: state parts eq=%v opt=%v", i, st.HasEq(), st.HasOpt())
		}
		if i > 0 && !st.OptWarmed() {
			t.Fatalf("frame %d: coverage water-filling ran cold despite the previous frame's optimum", i)
		}
		cur = next
	}
}
